// array_create / array_destroy (paper section 3).
//
//   array <$t> array_create(int dim, Size size, Size blocksize,
//                           Index lowerbd, $t init_elem(Index), int distr);
//   void array_destroy(array <$t> a);
//
// array_create allocates a block-wise distributed array, initialises
// every element from its global index with the functional argument
// `init_elem`, and maps the array onto the requested virtual topology
// (DISTR_DEFAULT / DISTR_RING / DISTR_TORUS2D, plus our hypercube
// extension).  Zero `blocksize` components and negative `lowerbd`
// components request the defaults, exactly as in the paper.
//
// The cyclic and block-cyclic creators implement the distributions the
// paper names as future work (section 6).
#pragma once

#include <algorithm>
#include <memory>
#include <utility>

#include "parix/charge_tape.h"
#include "parix/proc.h"
#include "parix/topology.h"
#include "skil/dist_array.h"

namespace skil {

namespace detail {

/// Fills a freshly created array from its initialiser function.
/// Cost model: one first-order call (the instantiated functional
/// argument) plus one element store per element.
template <class T, class InitFn>
void fill_from_init(DistArray<T>& a, InitFn&& init_elem) {
  const parix::TraceSpan span(a.proc(), "array_create");
  auto& local = a.local();
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  for (const RowRun& run : a.my_runs())
    for (int c = 0; c < run.col_count; ++c) {
      local[offset++] = init_elem(Index{run.row, run.col_begin + c});
      ++elems;
    }
  a.proc().charge(parix::Op::kCall, elems);
  a.proc().charge(op_kind<T>(), elems);
}

}  // namespace detail

/// Creates a block-distributed array (the paper's array_create).
template <class T, class InitFn>
DistArray<T> array_create(parix::Proc& proc, int dim, Size size,
                          Size blocksize, Index lowerbd, InitFn&& init_elem,
                          parix::Distr distr = parix::Distr::kDefault) {
  auto topo = std::make_shared<const parix::Topology>(proc.machine(), distr);
  auto dist = std::make_shared<const Distribution>(Distribution::block(
      std::move(topo), dim, size, blocksize, lowerbd));
  DistArray<T> a(proc, std::move(dist));
  detail::fill_from_init(a, std::forward<InitFn>(init_elem));
  return a;
}

/// Convenience overload with default block sizes and bounds.
template <class T, class InitFn>
DistArray<T> array_create(parix::Proc& proc, int dim, Size size,
                          InitFn&& init_elem,
                          parix::Distr distr = parix::Distr::kDefault) {
  return array_create<T>(proc, dim, size, Size{0, 0}, Index{-1, -1},
                         std::forward<InitFn>(init_elem), distr);
}

/// Constant-initialised creator, fusible with its consumer (DESIGN.md
/// section 13).  Unfused this is exactly array_create with a constant
/// functional argument: a fill pass charging one call and one element
/// store per element.  Under Proc::fusing() the per-element closure
/// calls are elided (a constant needs no call), and when the constant
/// is the value-initialised T{} the stores vanish too -- the freshly
/// allocated partition already holds those bits.  The consumer (e.g.
/// array_gen_mult folding c's initial elements) observes an identical
/// array either way.
template <class T>
DistArray<T> array_create_const(parix::Proc& proc, int dim, Size size,
                                T value,
                                parix::Distr distr = parix::Distr::kDefault) {
  if (!proc.fusing()) {
    if (proc.fuse_mode() == parix::FuseMode::kOn)
      parix::note_fusion_rejected(parix::FusionReject::kPath);
    return array_create<T>(proc, dim, size,
                           [value](Index) { return value; }, distr);
  }
  auto topo = std::make_shared<const parix::Topology>(proc.machine(), distr);
  auto dist = std::make_shared<const Distribution>(Distribution::block(
      std::move(topo), dim, size, Size{0, 0}, Index{-1, -1}));
  DistArray<T> a(proc, std::move(dist));
  if (!(value == T{})) {
    const parix::TraceSpan span(proc, "array_create");
    auto& local = a.local();
    std::fill(local.begin(), local.end(), value);
    proc.charge(op_kind<T>(), static_cast<std::uint64_t>(local.size()));
  }
  parix::note_fusion_fused(/*barriers=*/0, /*tapes=*/1);
  return a;
}

/// Row-cyclic creator (paper section 6 future work).
template <class T, class InitFn>
DistArray<T> array_create_cyclic(parix::Proc& proc, int dim, Size size,
                                 InitFn&& init_elem,
                                 parix::Distr distr = parix::Distr::kRing) {
  auto topo = std::make_shared<const parix::Topology>(proc.machine(), distr);
  auto dist = std::make_shared<const Distribution>(
      Distribution::cyclic(std::move(topo), dim, size));
  DistArray<T> a(proc, std::move(dist));
  detail::fill_from_init(a, std::forward<InitFn>(init_elem));
  return a;
}

/// Row-block-cyclic creator (paper section 6 future work).
template <class T, class InitFn>
DistArray<T> array_create_block_cyclic(
    parix::Proc& proc, int dim, Size size, int block_rows, InitFn&& init_elem,
    parix::Distr distr = parix::Distr::kRing) {
  auto topo = std::make_shared<const parix::Topology>(proc.machine(), distr);
  auto dist = std::make_shared<const Distribution>(
      Distribution::block_cyclic(std::move(topo), dim, size, block_rows));
  DistArray<T> a(proc, std::move(dist));
  detail::fill_from_init(a, std::forward<InitFn>(init_elem));
  return a;
}

/// Deallocates an array (the paper's array_destroy).  The handle
/// becomes invalid; RAII reclaims arrays that are never destroyed.
template <class T>
void array_destroy(DistArray<T>& a) {
  a.destroy();
}

}  // namespace skil
