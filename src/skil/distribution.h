// Distribution of a global array over the processors.
//
// The paper distributes arrays "only block-wise" and names cyclic and
// block-cyclic distributions as future work (section 6); all three are
// implemented here.  A distribution maps every global index to an
// owning processor (a *virtual rank* of the array's topology) and to an
// offset in that processor's local storage, and enumerates each
// processor's elements as contiguous row runs so skeleton loops stay
// tight.
//
// Block layout: the array is cut into a BR x BC grid of blocks, one
// block per processor, assigned in virtual-rank order (row-major over
// the block grid).  For a 2-D array on DISTR_TORUS2D the block grid
// equals the processor grid, which is what array_gen_mult requires.
// Passing zero block sizes derives them from the topology, mirroring
// the paper's "passing a zero value ... lets the skeleton fill in an
// appropriate value depending on the network topology".
//
// Cyclic / block-cyclic layouts deal (blocks of) rows round-robin over
// virtual ranks; columns are never split in these layouts.
#pragma once

#include <memory>
#include <vector>

#include "parix/topology.h"
#include "skil/index.h"

namespace skil {

enum class Layout {
  kBlock,        ///< the paper's distribution
  kCyclic,       ///< row-cyclic (paper section 6 future work)
  kBlockCyclic,  ///< row-block-cyclic (paper section 6 future work)
};

const char* layout_name(Layout layout);

/// One contiguous run of local elements: `col_count` elements of global
/// row `row` starting at global column `col_begin`.
struct RowRun {
  int row = 0;
  int col_begin = 0;
  int col_count = 0;
};

class Distribution {
 public:
  /// Block distribution.  `size` gives the global extents over `dims`
  /// dimensions (dims is 1 or 2); `blocksize` components of zero and
  /// `lowerbd` components below zero request defaults, as in the
  /// paper's array_create.
  static Distribution block(std::shared_ptr<const parix::Topology> topo,
                            int dims, Size size, Size blocksize = Size{0, 0},
                            Index lowerbd = Index{-1, -1});

  /// Row-cyclic distribution (columns unsplit).
  static Distribution cyclic(std::shared_ptr<const parix::Topology> topo,
                             int dims, Size size);

  /// Row-block-cyclic distribution with blocks of `block_rows` rows.
  static Distribution block_cyclic(std::shared_ptr<const parix::Topology> topo,
                                   int dims, Size size, int block_rows);

  int dims() const { return dims_; }
  Size size() const { return size_; }
  Layout layout() const { return layout_; }
  int cyclic_block() const { return cyclic_block_; }

  const parix::Topology& topology() const { return *topo_; }
  std::shared_ptr<const parix::Topology> topology_ptr() const { return topo_; }
  int nprocs() const { return topo_->nprocs(); }

  /// Row/column view: dimension 0 counts rows; a 1-D array is treated
  /// as size[0] rows of one column each.
  int global_rows() const { return size_[0]; }
  int global_cols() const { return dims_ >= 2 ? size_[1] : 1; }

  /// Block-grid dimensions (block layout: BR x BC == nprocs; cyclic
  /// layouts: nprocs x 1).
  int block_grid_rows() const { return block_grid_rows_; }
  int block_grid_cols() const { return block_grid_cols_; }

  /// Virtual rank (and hardware id) owning a global index.
  int owner_vrank(const Index& ix) const;
  int owner_hw(const Index& ix) const { return topo_->hw_of(owner_vrank(ix)); }

  /// Partition bounding box of a virtual rank (block layout only).
  Bounds partition_bounds(int vrank) const;

  /// Number of local elements of a virtual rank.
  long local_count(int vrank) const;

  /// The local elements of a virtual rank as contiguous row runs, in
  /// local-storage order.
  const std::vector<RowRun>& local_runs(int vrank) const;

  /// Offset of a global index inside its owner's local storage.
  long local_offset(int vrank, const Index& ix) const;

  /// True when every partition holds the same number of elements
  /// (precondition of array_broadcast_part's overwrite semantics).
  bool uniform_partitions() const;

  /// True when the block grid coincides with the topology's processor
  /// grid (required by array_gen_mult's rotations).
  bool block_grid_matches(const parix::Topology& topo) const {
    return layout_ == Layout::kBlock &&
           block_grid_rows_ == topo.grid_rows() &&
           block_grid_cols_ == topo.grid_cols();
  }

  /// True when two distributions describe the same global shape and
  /// element placement (skeletons use this to validate argument pairs).
  bool same_placement(const Distribution& other) const;

 private:
  Distribution() = default;
  void build_runs();

  std::shared_ptr<const parix::Topology> topo_;
  int dims_ = 1;
  Size size_{};
  Layout layout_ = Layout::kBlock;
  int cyclic_block_ = 1;

  // Block layout: boundaries of the block grid.  row_starts_ has
  // block_grid_rows_ + 1 entries; col_starts_ likewise.
  int block_grid_rows_ = 1;
  int block_grid_cols_ = 1;
  std::vector<int> row_starts_;
  std::vector<int> col_starts_;

  std::vector<std::vector<RowRun>> runs_;   // per vrank
  std::vector<long> counts_;                // per vrank
};

}  // namespace skil
