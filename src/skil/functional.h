// The functional features of Skil (paper section 2.1) in C++ form.
//
// Skil extends C with higher-order functions, currying / partial
// application, and the conversion of operators to functions, e.g.
//
//   fold((+), lst1)          -- operator section as a functional arg
//   map((*)(2), lst2)        -- partially applied operator
//   array_map(copy_pivot(b, k), piv, piv)   -- partial application
//
// In C++ the skeletons are templates over arbitrary callables, so the
// compiler performs the paper's "instantiation" translation (inlining
// the functional arguments, lifting the supplied ones, monomorphising
// the type variables) automatically.  This header supplies the
// syntactic counterparts: `partial` creates a partial application like
// Skil's `copy_pivot(b, k)`, `curry` turns an n-ary callable into a
// chain of unary applications, and `fn::plus` etc. are the operator
// sections `(+)`, `(*)`, `(-)`, `min`, `max`, ...
#pragma once

#include <algorithm>
#include <tuple>
#include <utility>

namespace skil {

/// Partial application: binds the leading arguments of `f` now, the
/// rest at the call site -- Skil's `eliminate(k, b, piv)` argument of
/// array_map becomes `partial(eliminate, k, std::ref(b), std::ref(piv))`.
template <class F, class... Bound>
auto partial(F&& f, Bound&&... bound) {
  return [f = std::forward<F>(f),
          ... bound = std::forward<Bound>(bound)](auto&&... rest) mutable
             -> decltype(auto) {
    return f(bound..., std::forward<decltype(rest)>(rest)...);
  };
}

namespace detail {

/// A curried callable: holds the original function plus the arguments
/// accumulated so far.  Each application either completes the call
/// (when the original callable accepts the accumulated arguments) or
/// returns a further-curried value.  Invocability is always tested
/// against the *original* callable, whose overload set fails
/// substitution cleanly for too-few arguments.
template <class F, class... Bound>
class Curried {
 public:
  Curried(F f, std::tuple<Bound...> bound)
      : f_(std::move(f)), bound_(std::move(bound)) {}

  template <class... Args>
  auto operator()(Args&&... args) const {
    if constexpr (std::is_invocable_v<const F&, const Bound&..., Args...>) {
      return std::apply(f_,
                        std::tuple_cat(bound_, std::forward_as_tuple(
                                                   std::forward<Args>(args)...)));
    } else {
      auto extended = std::tuple_cat(
          bound_, std::make_tuple(std::decay_t<Args>(
                      std::forward<Args>(args))...));
      return Curried<F, Bound..., std::decay_t<Args>...>(f_,
                                                         std::move(extended));
    }
  }

 private:
  F f_;
  std::tuple<Bound...> bound_;
};

}  // namespace detail

/// Currying: `curry(d_and_c)(is_trivial)(solve)(split)(join)(problem)`.
/// Each application supplies one or more arguments; once enough are
/// present, the underlying callable runs.
template <class F>
auto curry(F&& f) {
  return detail::Curried<std::decay_t<F>>(std::forward<F>(f), std::tuple<>{});
}

/// Operator sections -- the paper's `(op)` conversion of operators to
/// functions.  All are polymorphic function objects usable directly as
/// skeleton arguments and curryable via `curry`/`partial`.
namespace fn {

struct Plus {
  template <class A, class B>
  auto operator()(const A& a, const B& b) const { return a + b; }
};
struct Minus {
  template <class A, class B>
  auto operator()(const A& a, const B& b) const { return a - b; }
};
struct Times {
  template <class A, class B>
  auto operator()(const A& a, const B& b) const { return a * b; }
};
struct Divide {
  template <class A, class B>
  auto operator()(const A& a, const B& b) const { return a / b; }
};
struct Min {
  template <class T>
  const T& operator()(const T& a, const T& b) const {
    return std::min(a, b);
  }
};
struct Max {
  template <class T>
  const T& operator()(const T& a, const T& b) const {
    return std::max(a, b);
  }
};
struct Identity {
  template <class T>
  T operator()(T value) const { return value; }
};

inline constexpr Plus plus{};        ///< the paper's (+)
inline constexpr Minus minus{};      ///< (-)
inline constexpr Times times{};      ///< (*)
inline constexpr Divide divide{};    ///< (/)
inline constexpr Min min{};          ///< min
inline constexpr Max max{};          ///< max
inline constexpr Identity identity{};

/// `(*)(2)`-style section: binds the left operand of a binary
/// operator, e.g. `section(fn::times, 2)` multiplies by two.
template <class Op, class A>
auto section(Op op, A bound) {
  return [op, bound = std::move(bound)](const auto& x) {
    return op(bound, x);
  };
}

}  // namespace fn
}  // namespace skil
