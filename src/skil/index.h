// Index / Size / Bounds: the auxiliary types of the paper's array
// skeletons.
//
// The paper passes `Index` and `Size` as "'classical' arrays with dim
// elements".  Arrays here are one- or two-dimensional (the paper's
// applications use both); a third dimension is supported for
// completeness.  Bounds describe one processor's partition with an
// inclusive lower and an exclusive upper corner, matching the paper's
// map loop `for (i = l; i < h; i++)`.
#pragma once

#include <string>

namespace skil {

inline constexpr int kMaxDims = 3;

/// A dim-tuple of integer coordinates.  Unused dimensions stay zero.
struct Index {
  int v[kMaxDims] = {0, 0, 0};

  Index() = default;
  Index(int i0) : v{i0, 0, 0} {}            // NOLINT: deliberate implicit
  Index(int i0, int i1) : v{i0, i1, 0} {}
  Index(int i0, int i1, int i2) : v{i0, i1, i2} {}

  int operator[](int d) const { return v[d]; }
  int& operator[](int d) { return v[d]; }

  bool operator==(const Index&) const = default;
};

/// Sizes use the same representation as indices (paper section 3).
using Size = Index;

/// One partition's index box: lower inclusive, upper exclusive.
struct Bounds {
  Index lower;
  Index upper;

  /// Does the box contain `ix` in its first `dims` dimensions?
  /// (Inline: this sits on the per-element fast path of get_elem.)
  bool contains(const Index& ix, int dims) const {
    for (int d = 0; d < dims; ++d)
      if (ix.v[d] < lower.v[d] || ix.v[d] >= upper.v[d]) return false;
    return true;
  }

  /// Extent along dimension `d` (zero when empty).
  int extent(int d) const {
    const int e = upper.v[d] - lower.v[d];
    return e > 0 ? e : 0;
  }

  /// Number of contained elements over `dims` dimensions.
  long volume(int dims) const {
    long vol = 1;
    for (int d = 0; d < dims; ++d) vol *= extent(d);
    return vol;
  }

  bool operator==(const Bounds&) const = default;
};

/// "(3, 5)"-style rendering for diagnostics.
std::string to_string(const Index& ix, int dims);
std::string to_string(const Bounds& b, int dims);

}  // namespace skil
