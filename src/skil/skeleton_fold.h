// array_fold (paper section 3).
//
//   $t2 array_fold($t2 conv_f($t1, Index), $t2 fold_f($t2, $t2),
//                  array <$t1> a);
//
// The skeleton first applies the conversion function to every element
// "in a map-like way" (fused into the local fold, "more efficient"
// than a preliminary array_map, as the paper's footnote 3 notes), then
// folds the local partition, folds partition results along a virtual
// tree topology to the root, and finally broadcasts the result back so
// every processor returns it.  The folding function must be
// associative and commutative, "otherwise the result is
// non-deterministic".
#pragma once

#include <optional>
#include <type_traits>
#include <utility>

#include "parix/collectives.h"
#include "parix/proc.h"
#include "skil/dist_array.h"

namespace skil {

namespace detail {

template <class F, class T>
decltype(auto) apply_conv_f(F& conv_f, const T& elem, const Index& ix) {
  if constexpr (std::is_invocable_v<F&, const T&, Index>) {
    return conv_f(elem, ix);
  } else {
    return conv_f(elem);
  }
}

}  // namespace detail

/// Folds all elements of `a` together; every processor receives the
/// result.  `conv_f` maps ($t1, Index) to the fold domain $t2 and
/// `fold_f` combines two $t2 values.
///
/// Cost model (per element): one call for the conversion, one call for
/// the fold step, one element operation; the tree combination and the
/// final broadcast are priced by the message layer.
template <class Conv, class Fold, class T1>
auto array_fold(Conv conv_f, Fold fold_f, const DistArray<T1>& a) {
  using T2 = std::decay_t<decltype(detail::apply_conv_f(
      conv_f, std::declval<const T1&>(), Index{}))>;
  SKIL_REQUIRE(a.valid(), "array_fold: invalid array");
  const parix::TraceSpan span(a.proc(), "array_fold");

  const auto& src = a.local();
  std::optional<T2> acc;
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  for (const RowRun& run : a.my_runs())
    for (int c = 0; c < run.col_count; ++c) {
      T2 converted = detail::apply_conv_f(conv_f, src[offset],
                                          Index{run.row, run.col_begin + c});
      if (acc.has_value()) {
        acc = fold_f(std::move(*acc), std::move(converted));
      } else {
        acc = std::move(converted);
      }
      ++offset;
      ++elems;
    }
  a.proc().charge_elems(parix::Op::kCall, elems, 2);
  a.proc().charge_elems(op_kind<T1>(), elems);

  // Partitions can be empty when the array is smaller than the
  // machine; optional-merging keeps the tree fold well-defined.
  auto merge = [&fold_f, &a](std::optional<T2> lhs,
                             std::optional<T2> rhs) -> std::optional<T2> {
    if (!lhs.has_value()) return rhs;
    if (!rhs.has_value()) return lhs;
    a.proc().charge(parix::Op::kCall);
    return fold_f(std::move(*lhs), std::move(*rhs));
  };
  // allreduce resolves its algorithm per SKIL_COLL (parix/coll.h);
  // every family replays the same tree combine bracketing, so the
  // folded value is bit-identical in all modes.
  std::optional<T2> result =
      parix::allreduce(a.proc(), a.topology(), std::move(acc), merge);
  SKIL_REQUIRE(result.has_value(), "array_fold: array has no elements");
  return *result;
}

}  // namespace skil
