// array_gen_mult (paper section 3): generic matrix multiplication.
//
//   void array_gen_mult(array <$t> a, array <$t> b,
//                       $t gen_add($t, $t), $t gen_mult($t, $t),
//                       array <$t> c);
//
// Composes two 2-dimensional arrays "using the pattern of matrix
// multiplication": c(i,j) = fold_{gen_add} over k of
// gen_mult(a(i,k), b(k,j)), additionally folded with c's initial
// element (so the caller creates c with the fold's identity -- the
// paper's shortest-paths program initialises c with the maximal
// integer, the identity of min).
//
// The implementation is Gentleman's distributed algorithm, exactly as
// the paper describes: the arrays live block-wise on a 2-D torus of
// q x q processors; after an initial skew (block row i of `a` rotates
// i positions left, block column j of `b` rotates j positions up),
// q rounds alternate a local generalized block multiplication with a
// one-step horizontal rotation of `a` and vertical rotation of `b`.
// After q rounds the blocks are back at their skewed position and an
// unskew restores the original placement, leaving `a` and `b` intact.
//
// "We impose the condition that the matrices a, b and c are distinct"
// -- aliased arguments raise ContractError.
#pragma once

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "parix/buffer_pool.h"
#include "parix/charge_tape.h"
#include "parix/collectives.h"
#include "parix/proc.h"
#include "skil/dist_array.h"

namespace skil {

namespace detail {

/// Rotates `payload` by `steps` positions towards lower column indices
/// (dcol = -1) or lower row indices (drow = -1) on the torus in one
/// direct message (the skew/unskew step).
template <class T>
std::vector<T> torus_rotate_by(parix::Proc& proc, const parix::Topology& topo,
                               std::vector<T> payload, int drow, int dcol) {
  const long tag = proc.fresh_tag();
  const int row = topo.grid_row(proc.id());
  const int col = topo.grid_col(proc.id());
  const int dst = topo.at_grid(row + drow, col + dcol);
  const int src = topo.at_grid(row - drow, col - dcol);
  if (dst == proc.id()) return payload;
  proc.send<std::vector<T>>(dst, tag, std::move(payload));
  return proc.recv<std::vector<T>>(src, tag);
}

}  // namespace detail

/// Generic Gentleman matrix multiplication; see the header comment.
template <class T, class Add, class Mult>
void array_gen_mult(DistArray<T>& a, DistArray<T>& b, Add gen_add,
                    Mult gen_mult, DistArray<T>& c) {
  SKIL_REQUIRE(a.valid() && b.valid() && c.valid(),
               "array_gen_mult: invalid array");
  SKIL_REQUIRE(&a.local() != &b.local() && &a.local() != &c.local() &&
                   &b.local() != &c.local(),
               "array_gen_mult: the arrays a, b and c must be distinct");
  const Distribution& dist = a.dist();
  SKIL_REQUIRE(dist.dims() == 2 && dist.layout() == Layout::kBlock,
               "array_gen_mult needs 2-D block-distributed arrays");
  SKIL_REQUIRE(dist.same_placement(b.dist()) && dist.same_placement(c.dist()),
               "array_gen_mult: arrays must share one distribution");
  const parix::Topology& topo = a.topology();
  SKIL_REQUIRE(topo.kind() == parix::Distr::kTorus2D,
               "array_gen_mult: arrays must be mapped onto DISTR_TORUS2D");
  const int q_rows = topo.grid_rows();
  const int q_cols = topo.grid_cols();
  SKIL_REQUIRE(q_rows == q_cols,
               "array_gen_mult needs a square processor grid (run with a "
               "square processor count)");
  SKIL_REQUIRE(dist.block_grid_matches(topo),
               "array_gen_mult: block grid must match the processor grid");
  const int n = dist.global_rows();
  SKIL_REQUIRE(n == dist.global_cols(),
               "array_gen_mult: arrays must be square");
  const int q = q_rows;
  SKIL_REQUIRE(n % q == 0,
               "array_gen_mult: the matrix size must be divisible by the "
               "processor grid side (the paper rounds n up accordingly)");
  const int block = n / q;

  parix::Proc& proc = a.proc();
  const parix::TraceSpan span(proc, "array_gen_mult");
  const int my_row = topo.grid_row(proc.id());
  const int my_col = topo.grid_col(proc.id());

  // Working copies keep `a` and `b` intact even if a functional
  // argument throws mid-round.
  std::vector<T> a_block = a.local();
  std::vector<T> b_block = b.local();
  const std::uint64_t block_words =
      (a_block.size() * sizeof(T)) / sizeof(long) + 1;
  proc.charge(parix::Op::kCopyWord, 2 * block_words);

  // Skew: block row i of A moves i positions left; block column j of B
  // moves j positions up (single direct messages).
  a_block = detail::torus_rotate_by(proc, topo, std::move(a_block), 0, -my_row);
  b_block = detail::torus_rotate_by(proc, topo, std::move(b_block), -my_col, 0);

  // The rotation payloads travel as shared zero-copy buffers: each
  // round's send references the tiles the multiply loop reads, so the
  // host copies nothing per round.  The *modeled* T800 still paid a
  // send-buffer copy per rotation, so the kCopyWord charge below
  // stays -- eliminating the host copy must not move the virtual
  // clock.  The pool recycles vector nodes drained by the receiver.
  parix::BufferPool<T> pool;
  std::shared_ptr<const std::vector<T>> a_buf = pool.share(std::move(a_block));
  std::shared_ptr<const std::vector<T>> b_buf = pool.share(std::move(b_block));

  const int a_dst = topo.torus_neighbor(proc.id(), 0, -1);
  const int a_src = topo.torus_neighbor(proc.id(), 0, +1);
  const int b_dst = topo.torus_neighbor(proc.id(), -1, 0);
  const int b_src = topo.torus_neighbor(proc.id(), +1, 0);
  const bool rotating = a_dst != proc.id() || b_dst != proc.id();

  // Column tile sized to keep the c and b rows walked by the k loop
  // resident in cache.  Per (i, j) cell the k order is untouched, so
  // each gen_add fold happens in exactly the original order and the
  // result (FP rounding included) is bit-identical to the naive loop.
  constexpr int kTileCols = 64;

  // Every round books the same three bulk charges; the tape path
  // records them once and replays the tape per round.  No virtual-time
  // event separates the interp path's pre-compute kCopyWord charge
  // from its post-compute charges (the compute loop charges nothing),
  // so replaying all three after the compute walks the identical
  // dependent FP-add chain (DESIGN.md section 8).  Recorded once
  // before the round loop, the tape also keeps one identity across
  // all q replays, so rounds past the first settle off the memoized
  // period delta instead of re-probing (DESIGN.md section 12).
  const std::uint64_t fused = static_cast<std::uint64_t>(block) * block * block;
  const bool taped = parix::default_charge_path() == parix::ChargePath::kTape;
  parix::ChargeTape round_tape;
  if (taped) {
    if (rotating)
      round_tape.charge_elems(parix::Op::kCopyWord, block_words, 2);
    round_tape.charge_elems(parix::Op::kCall, fused, 2);
    round_tape.charge_elems(op_kind<T>(), fused, 2);
  }

  std::vector<T>& c_block = c.local();
  for (int round = 0; round < q; ++round) {
    const parix::TraceSpan round_span(proc, "gen_mult round", round);
    // Asynchronous overlap (the optimization Table 1's footnote
    // credits the skeleton implementation with): post this round's
    // rotations *before* the local multiplication, so the transfers
    // proceed while the processor computes.
    const long tag = proc.fresh_tag();
    if (rotating) {
      proc.send_buffer<T>(a_dst, tag, a_buf, parix::SendMode::kAsync);
      proc.send_buffer<T>(b_dst, tag + 1, b_buf, parix::SendMode::kAsync);
      if (!taped) proc.charge_elems(parix::Op::kCopyWord, block_words, 2);
    }

    // Local generalized multiply-accumulate of the (block x block)
    // tiles currently resident: c += A_tile (*) B_tile under
    // (gen_add, gen_mult).  The accumulation includes c's previous
    // content, so round 0 folds in c's initial elements.
    const std::vector<T>& a_tile = *a_buf;
    const std::vector<T>& b_tile = *b_buf;
    for (int j0 = 0; j0 < block; j0 += kTileCols) {
      const int j1 = std::min(j0 + kTileCols, block);
      for (int i = 0; i < block; ++i) {
        T* crow = &c_block[static_cast<std::size_t>(i) * block];
        for (int k = 0; k < block; ++k) {
          const T& aik = a_tile[static_cast<std::size_t>(i) * block + k];
          const T* brow = &b_tile[static_cast<std::size_t>(k) * block];
          for (int j = j0; j < j1; ++j)
            crow[j] = gen_add(crow[j], gen_mult(aik, brow[j]));
        }
      }
    }
    // Charge the round's arithmetic before receiving, so the virtual
    // receive time reflects the computation that overlapped it: two
    // functional-argument calls and two element operations per fused
    // multiply-add, as the instantiated Skil code would execute.
    if (taped) {
      proc.replay(round_tape, 1);
    } else {
      proc.charge_elems(parix::Op::kCall, fused, 2);
      proc.charge_elems(op_kind<T>(), fused, 2);
    }

    // Complete the rotation (also after the last round: q single-step
    // rotations return the blocks to their skewed start, which the
    // unskew below undoes).
    if (rotating) {
      a_buf = pool.share(proc.recv<std::vector<T>>(a_src, tag));
      b_buf = pool.share(proc.recv<std::vector<T>>(b_src, tag + 1));
    }
  }

  // Unskew (restores the caller's a and b placements).
  a_block = parix::take_buffer(std::move(a_buf));
  b_block = parix::take_buffer(std::move(b_buf));
  a_block = detail::torus_rotate_by(proc, topo, std::move(a_block), 0, my_row);
  b_block = detail::torus_rotate_by(proc, topo, std::move(b_block), my_col, 0);
  a.local() = std::move(a_block);
  b.local() = std::move(b_block);
}

}  // namespace skil
