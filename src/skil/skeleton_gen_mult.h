// array_gen_mult (paper section 3): generic matrix multiplication.
//
//   void array_gen_mult(array <$t> a, array <$t> b,
//                       $t gen_add($t, $t), $t gen_mult($t, $t),
//                       array <$t> c);
//
// Composes two 2-dimensional arrays "using the pattern of matrix
// multiplication": c(i,j) = fold_{gen_add} over k of
// gen_mult(a(i,k), b(k,j)), additionally folded with c's initial
// element (so the caller creates c with the fold's identity -- the
// paper's shortest-paths program initialises c with the maximal
// integer, the identity of min).
//
// The implementation is Gentleman's distributed algorithm, exactly as
// the paper describes: the arrays live block-wise on a 2-D torus of
// q x q processors; after an initial skew (block row i of `a` rotates
// i positions left, block column j of `b` rotates j positions up),
// q rounds alternate a local generalized block multiplication with a
// one-step horizontal rotation of `a` and vertical rotation of `b`.
// After q rounds the blocks are back at their skewed position and an
// unskew restores the original placement, leaving `a` and `b` intact.
//
// "We impose the condition that the matrices a, b and c are distinct"
// -- aliased arguments raise ContractError.
#pragma once

#include <algorithm>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "parix/buffer_pool.h"
#include "parix/charge_tape.h"
#include "parix/collectives.h"
#include "parix/proc.h"
#include "skil/dist_array.h"

namespace skil {

namespace detail {

/// Rotates `payload` by `steps` positions towards lower column indices
/// (dcol = -1) or lower row indices (drow = -1) on the torus in one
/// direct message (the skew/unskew step).
template <class T>
std::vector<T> torus_rotate_by(parix::Proc& proc, const parix::Topology& topo,
                               std::vector<T> payload, int drow, int dcol) {
  const long tag = proc.fresh_tag();
  const int row = topo.grid_row(proc.id());
  const int col = topo.grid_col(proc.id());
  const int dst = topo.at_grid(row + drow, col + dcol);
  const int src = topo.at_grid(row - drow, col - dcol);
  if (dst == proc.id()) return payload;
  proc.send<std::vector<T>>(dst, tag, std::move(payload));
  return proc.recv<std::vector<T>>(src, tag);
}

/// Validates the geometry shared by array_gen_mult and its fused
/// variants, returning the block side.  `a` and `b` may alias in the
/// squaring composition; `c` must always be distinct.
template <class T>
int gen_mult_geometry(const DistArray<T>& a, const DistArray<T>& b,
                      const DistArray<T>& c) {
  SKIL_REQUIRE(a.valid() && b.valid() && c.valid(),
               "array_gen_mult: invalid array");
  SKIL_REQUIRE(&a.local() != &c.local() && &b.local() != &c.local(),
               "array_gen_mult: the result array must be distinct");
  const Distribution& dist = a.dist();
  SKIL_REQUIRE(dist.dims() == 2 && dist.layout() == Layout::kBlock,
               "array_gen_mult needs 2-D block-distributed arrays");
  SKIL_REQUIRE(dist.same_placement(b.dist()) && dist.same_placement(c.dist()),
               "array_gen_mult: arrays must share one distribution");
  const parix::Topology& topo = a.topology();
  SKIL_REQUIRE(topo.kind() == parix::Distr::kTorus2D,
               "array_gen_mult: arrays must be mapped onto DISTR_TORUS2D");
  const int q_rows = topo.grid_rows();
  const int q_cols = topo.grid_cols();
  SKIL_REQUIRE(q_rows == q_cols,
               "array_gen_mult needs a square processor grid (run with a "
               "square processor count)");
  SKIL_REQUIRE(dist.block_grid_matches(topo),
               "array_gen_mult: block grid must match the processor grid");
  const int n = dist.global_rows();
  SKIL_REQUIRE(n == dist.global_cols(),
               "array_gen_mult: arrays must be square");
  SKIL_REQUIRE(n % q_rows == 0,
               "array_gen_mult: the matrix size must be divisible by the "
               "processor grid side (the paper rounds n up accordingly)");
  return n / q_rows;
}

/// Skew plus the q compute/rotate rounds of Gentleman's algorithm over
/// already-built working blocks, accumulating into `c_block`.  On
/// return the operand blocks sit at their skewed start position (the q
/// single-step rotations wrap around); the caller either unskews and
/// writes them back (array_gen_mult, which leaves `a` and `b` intact)
/// or drops them (the fused variants -- the restoring movement is
/// value-free, so eliding it cannot change any array).  The charge
/// sequence from the first skew message onward is byte-identical
/// between all callers.
template <class T, class Add, class Mult>
std::pair<std::vector<T>, std::vector<T>> gen_mult_rounds(
    parix::Proc& proc, const parix::Topology& topo, int block,
    std::vector<T> a_block, std::vector<T> b_block, std::vector<T>& c_block,
    Add& gen_add, Mult& gen_mult) {
  const int q = topo.grid_rows();
  const int my_row = topo.grid_row(proc.id());
  const int my_col = topo.grid_col(proc.id());
  const std::uint64_t block_words =
      (a_block.size() * sizeof(T)) / sizeof(long) + 1;

  // Skew: block row i of A moves i positions left; block column j of B
  // moves j positions up (single direct messages).
  a_block = detail::torus_rotate_by(proc, topo, std::move(a_block), 0, -my_row);
  b_block = detail::torus_rotate_by(proc, topo, std::move(b_block), -my_col, 0);

  // The rotation payloads travel as shared zero-copy buffers: each
  // round's send references the tiles the multiply loop reads, so the
  // host copies nothing per round.  The *modeled* T800 still paid a
  // send-buffer copy per rotation, so the kCopyWord charge below
  // stays -- eliminating the host copy must not move the virtual
  // clock.  The process-wide pool recycles vector nodes drained by
  // the receiver, and keeps them warm across sweep cells.
  parix::BufferPool<T>& pool = parix::process_buffer_pool<T>();
  std::shared_ptr<const std::vector<T>> a_buf = pool.share(std::move(a_block));
  std::shared_ptr<const std::vector<T>> b_buf = pool.share(std::move(b_block));

  const int a_dst = topo.torus_neighbor(proc.id(), 0, -1);
  const int a_src = topo.torus_neighbor(proc.id(), 0, +1);
  const int b_dst = topo.torus_neighbor(proc.id(), -1, 0);
  const int b_src = topo.torus_neighbor(proc.id(), +1, 0);
  const bool rotating = a_dst != proc.id() || b_dst != proc.id();

  // Column tile sized to keep the c and b rows walked by the k loop
  // resident in cache.  Per (i, j) cell the k order is untouched, so
  // each gen_add fold happens in exactly the original order and the
  // result (FP rounding included) is bit-identical to the naive loop.
  constexpr int kTileCols = 64;

  // Every round books the same three bulk charges; the tape path
  // records them once and replays the tape per round.  No virtual-time
  // event separates the interp path's pre-compute kCopyWord charge
  // from its post-compute charges (the compute loop charges nothing),
  // so replaying all three after the compute walks the identical
  // dependent FP-add chain (DESIGN.md section 8).  Recorded once
  // before the round loop, the tape also keeps one identity across
  // all q replays, so rounds past the first settle off the memoized
  // period delta instead of re-probing (DESIGN.md section 12).
  const std::uint64_t fused = static_cast<std::uint64_t>(block) * block * block;
  const bool taped = parix::default_charge_path() == parix::ChargePath::kTape;
  parix::ChargeTape round_tape;
  if (taped) {
    if (rotating)
      round_tape.charge_elems(parix::Op::kCopyWord, block_words, 2);
    round_tape.charge_elems(parix::Op::kCall, fused, 2);
    round_tape.charge_elems(op_kind<T>(), fused, 2);
  }

  for (int round = 0; round < q; ++round) {
    const parix::TraceSpan round_span(proc, "gen_mult round", round);
    // Asynchronous overlap (the optimization Table 1's footnote
    // credits the skeleton implementation with): post this round's
    // rotations *before* the local multiplication, so the transfers
    // proceed while the processor computes.
    const long tag = proc.fresh_tag();
    if (rotating) {
      proc.send_buffer<T>(a_dst, tag, a_buf, parix::SendMode::kAsync);
      proc.send_buffer<T>(b_dst, tag + 1, b_buf, parix::SendMode::kAsync);
      if (!taped) proc.charge_elems(parix::Op::kCopyWord, block_words, 2);
    }

    // Local generalized multiply-accumulate of the (block x block)
    // tiles currently resident: c += A_tile (*) B_tile under
    // (gen_add, gen_mult).  The accumulation includes c's previous
    // content, so round 0 folds in c's initial elements.
    const std::vector<T>& a_tile = *a_buf;
    const std::vector<T>& b_tile = *b_buf;
    for (int j0 = 0; j0 < block; j0 += kTileCols) {
      const int j1 = std::min(j0 + kTileCols, block);
      for (int i = 0; i < block; ++i) {
        T* crow = &c_block[static_cast<std::size_t>(i) * block];
        for (int k = 0; k < block; ++k) {
          const T& aik = a_tile[static_cast<std::size_t>(i) * block + k];
          const T* brow = &b_tile[static_cast<std::size_t>(k) * block];
          for (int j = j0; j < j1; ++j)
            crow[j] = gen_add(crow[j], gen_mult(aik, brow[j]));
        }
      }
    }
    // Charge the round's arithmetic before receiving, so the virtual
    // receive time reflects the computation that overlapped it: two
    // functional-argument calls and two element operations per fused
    // multiply-add, as the instantiated Skil code would execute.
    if (taped) {
      proc.replay(round_tape, 1);
    } else {
      proc.charge_elems(parix::Op::kCall, fused, 2);
      proc.charge_elems(op_kind<T>(), fused, 2);
    }

    // Complete the rotation (also after the last round: q single-step
    // rotations return the blocks to their skewed start, which the
    // unskew below undoes).
    if (rotating) {
      a_buf = pool.share(proc.recv<std::vector<T>>(a_src, tag));
      b_buf = pool.share(proc.recv<std::vector<T>>(b_src, tag + 1));
    }
  }

  return {parix::take_buffer(std::move(a_buf)),
          parix::take_buffer(std::move(b_buf))};
}

}  // namespace detail

/// Generic Gentleman matrix multiplication; see the header comment.
template <class T, class Add, class Mult>
void array_gen_mult(DistArray<T>& a, DistArray<T>& b, Add gen_add,
                    Mult gen_mult, DistArray<T>& c) {
  SKIL_REQUIRE(&a.local() != &b.local(),
               "array_gen_mult: the arrays a, b and c must be distinct");
  const int block = detail::gen_mult_geometry(a, b, c);
  const parix::Topology& topo = a.topology();
  parix::Proc& proc = a.proc();
  const parix::TraceSpan span(proc, "array_gen_mult");
  const int my_row = topo.grid_row(proc.id());
  const int my_col = topo.grid_col(proc.id());

  // Working copies keep `a` and `b` intact even if a functional
  // argument throws mid-round.
  std::vector<T> a_block = a.local();
  std::vector<T> b_block = b.local();
  const std::uint64_t block_words =
      (a_block.size() * sizeof(T)) / sizeof(long) + 1;
  proc.charge(parix::Op::kCopyWord, 2 * block_words);

  auto [a_done, b_done] =
      detail::gen_mult_rounds(proc, topo, block, std::move(a_block),
                              std::move(b_block), c.local(), gen_add,
                              gen_mult);

  if (proc.fusing()) {
    // The unskew only restores the operands' physical placement: the
    // returned blocks hold bitwise the values `a` and `b` already
    // hold (the rounds wrapped them back to the skewed start, and the
    // caller's arrays were never modified).  Under fusion the
    // restoring rotation is elided -- one communication round fewer,
    // with no observable difference in any array.
    parix::note_fusion_fused(/*barriers=*/1, /*tapes=*/0);
    return;
  }
  if (proc.fuse_mode() == parix::FuseMode::kOn)
    parix::note_fusion_rejected(parix::FusionReject::kPath);

  // Unskew (restores the caller's a and b placements).
  a_done = detail::torus_rotate_by(proc, topo, std::move(a_done), 0, my_row);
  b_done = detail::torus_rotate_by(proc, topo, std::move(b_done), my_col, 0);
  a.local() = std::move(a_done);
  b.local() = std::move(b_done);
}

/// Fused matrix squaring (DESIGN.md section 13): the composition
///
///   array_copy(a, scratch);
///   array_gen_mult(a, scratch, gen_add, gen_mult, c);
///   array_copy(c, a);
///
/// collapsed into one skeleton call.  Under Proc::fusing() the operand
/// copy is elided (both working blocks are built straight from `a`),
/// the restoring unskew rotation is elided (the blocks it would move
/// carry no information -- `a` was never modified), and the trailing
/// result copy becomes a handle swap performed by the caller.
///
/// Contract (customizing-function requirement, in the spirit of
/// array_fold's commutativity clause): `gen_add` must be an exact
/// idempotent selection (integral min/max style) and `c`'s incoming
/// elements must be dominated by -- fold to the same result as -- the
/// identity the unfused composition would have left there.  Shortest
/// paths qualifies: distances only shrink, so a previous iterate in
/// `c` folds away under min exactly like kDistInf.  Non-integral
/// element types are rejected (kOrder): floating-point selection can
/// move bits through signed zeros and NaN payloads.
///
/// After the call `c` holds the product and `a` is untouched; the
/// caller swaps the handles to complete the composition.  Returns
/// true when the fused path ran (false: the unfused sequence ran and
/// `a` already holds the result).
template <class T, class Add, class Mult>
bool array_gen_mult_squared(DistArray<T>& a, Add gen_add, Mult gen_mult,
                            DistArray<T>& c, DistArray<T>& scratch) {
  parix::Proc& proc = a.proc();
  const bool fuse_on = proc.fuse_mode() == parix::FuseMode::kOn;
  if (!proc.fusing() || !std::is_integral_v<T>) {
    if (fuse_on) {
      if (proc.fusing())
        parix::note_fusion_rejected(parix::FusionReject::kOrder);
      else
        parix::note_fusion_rejected(parix::FusionReject::kPath);
    }
    array_copy(a, scratch);
    array_gen_mult(a, scratch, gen_add, gen_mult, c);
    array_copy(c, a);
    return false;
  }
  const int block = detail::gen_mult_geometry(a, a, c);
  const parix::Topology& topo = a.topology();
  const parix::TraceSpan span(proc, "fused gen_mult squared");

  // Both working blocks read straight from `a`; the modeled machine
  // still builds two operand buffers, so the two working-copy charges
  // stay.  What disappears is the full-array copy skeleton that fed
  // `scratch` and the result copy back into `a`.
  std::vector<T> a_block = a.local();
  std::vector<T> b_block = a.local();
  const std::uint64_t block_words =
      (a_block.size() * sizeof(T)) / sizeof(long) + 1;
  proc.charge(parix::Op::kCopyWord, 2 * block_words);

  detail::gen_mult_rounds(proc, topo, block, std::move(a_block),
                          std::move(b_block), c.local(), gen_add, gen_mult);
  parix::note_fusion_fused(/*barriers=*/1, /*tapes=*/2);
  return true;
}

}  // namespace skil
