// array_broadcast_part and array_permute_rows (paper section 3).
//
//   void array_broadcast_part(array <$t> a, Index ix);
//   void array_permute_rows(array <$t> from, int perm_f(int),
//                           array <$t> to);
//
// array_broadcast_part broadcasts the partition containing index `ix`
// to all processors, each of which overwrites its own partition with
// the broadcast one (the paper's Gaussian elimination uses this to
// distribute the pivot row via the one-row-per-processor `piv` array).
//
// array_permute_rows permutes the rows of a 2-D array with a
// user-supplied permutation function on row numbers.  "The user must
// provide a bijective function on {0, 1, ..., n-1} ... otherwise a
// run-time error occurs" -- the bijectivity check runs up front on
// every processor (it is pure local computation because perm_f is a
// plain function of the row number), so a bad permutation raises
// ContractError instead of deadlocking the exchange.
#pragma once

#include <utility>
#include <vector>

#include "parix/collectives.h"
#include "parix/proc.h"
#include "skil/dist_array.h"

namespace skil {

/// Wire batch of full-width row segments exchanged by
/// array_permute_rows: data holds the concatenated segments of the
/// listed target rows, each `segment` elements long.
template <class T>
struct RowBatch {
  std::vector<int> target_rows;
  std::vector<T> data;
};

/// Wire-size estimate for the message layer (found by ADL).
template <class T>
std::size_t payload_bytes(const RowBatch<T>& batch) {
  return batch.target_rows.size() * sizeof(int) +
         batch.data.size() * sizeof(T) + 16;
}

/// Broadcasts the partition containing `ix`; every processor
/// overwrites its partition with the broadcast one.
template <class T>
void array_broadcast_part(DistArray<T>& a, Index ix) {
  SKIL_REQUIRE(a.valid(), "array_broadcast_part: invalid array");
  SKIL_REQUIRE(a.dist().uniform_partitions(),
               "array_broadcast_part: partitions must have equal size");
  const parix::TraceSpan span(a.proc(), "array_broadcast_part");
  const int root_hw = a.dist().owner_hw(ix);
  std::vector<T> part;
  if (a.proc().id() == root_hw) part = a.local();
  // Partitions are uniform (REQUIREd above), so every processor can
  // hand the collective the same payload-size hint; large partitions
  // then take the chunk-pipelined ring under SKIL_COLL=auto/ring.
  parix::broadcast(a.proc(), a.topology(), root_hw, part,
                   a.local().size() * sizeof(T));
  if (a.proc().id() != root_hw) {
    SKIL_ASSERT(part.size() == a.local().size(),
                "array_broadcast_part: partition size mismatch");
    a.local() = std::move(part);
  }
  const std::uint64_t words =
      (a.local().size() * sizeof(T) + sizeof(long) - 1) / sizeof(long);
  a.proc().charge(parix::Op::kCopyWord, words);
}

/// Permutes the rows of the 2-D array `from` into `to` using the
/// functional argument `perm_f` (new row = perm_f(old row)).
///
/// Cost model: one call per row for the permutation function, copy
/// traffic for every moved row, messages for rows that change
/// processors.
template <class PermF, class T>
void array_permute_rows(const DistArray<T>& from, PermF perm_f,
                        DistArray<T>& to) {
  SKIL_REQUIRE(from.valid() && to.valid(),
               "array_permute_rows: invalid array");
  SKIL_REQUIRE(from.dist().dims() == 2,
               "array_permute_rows applies only to 2-dimensional arrays");
  SKIL_REQUIRE(from.dist().same_placement(to.dist()),
               "array_permute_rows: arrays must share one distribution");
  SKIL_REQUIRE(from.dist().layout() == Layout::kBlock,
               "array_permute_rows requires a block distribution");
  SKIL_REQUIRE(&from.local() != &to.local(),
               "array_permute_rows: source and target must be distinct");
  parix::Proc& proc = from.proc();
  const parix::TraceSpan span(proc, "array_permute_rows");
  const Distribution& dist = from.dist();
  const int n = dist.global_rows();

  // Up-front bijectivity validation (paper: "otherwise a run-time
  // error occurs").  perm_f is a pure function of the row number, so
  // every processor can check the whole permutation locally and build
  // the inverse needed to anticipate incoming rows.
  std::vector<int> inverse(n, -1);
  for (int row = 0; row < n; ++row) {
    const int target = perm_f(row);
    SKIL_REQUIRE(target >= 0 && target < n,
                 "array_permute_rows: perm_f(" + std::to_string(row) +
                     ") = " + std::to_string(target) + " is out of range");
    SKIL_REQUIRE(inverse[target] < 0,
                 "array_permute_rows: perm_f is not a bijection (value " +
                     std::to_string(target) + " produced twice)");
    inverse[target] = row;
  }
  proc.charge(parix::Op::kCall, static_cast<std::uint64_t>(n));
  proc.charge(parix::Op::kIntOp, static_cast<std::uint64_t>(n));

  const parix::Topology& topo = from.topology();
  const long tag = topo.fresh_tag(proc);
  const int p = topo.nprocs();
  const int my_vrank = from.my_vrank();
  const auto& src = from.local();
  auto& dst = to.local();

  // Group outgoing row segments by destination virtual rank.  A row
  // segment is this partition's column range of one row; with a torus
  // block grid a row is spread over a whole block-grid row of
  // processors and every segment moves vertically within its column.
  std::vector<RowBatch<T>> outgoing(p);
  std::size_t src_offset = 0;
  std::uint64_t copied_words = 0;
  for (const RowRun& run : from.my_runs()) {
    const int target = perm_f(run.row);
    const int dest =
        dist.owner_vrank(Index{target, run.col_begin});
    RowBatch<T>& batch = outgoing[dest];
    batch.target_rows.push_back(target);
    batch.data.insert(batch.data.end(), src.begin() + src_offset,
                      src.begin() + src_offset + run.col_count);
    src_offset += run.col_count;
    copied_words += (run.col_count * sizeof(T)) / sizeof(long) + 1;
  }
  proc.charge(parix::Op::kCall, from.my_runs().size());
  proc.charge(parix::Op::kCopyWord, copied_words);

  for (int dest = 0; dest < p; ++dest) {
    if (dest == my_vrank || outgoing[dest].target_rows.empty()) continue;
    proc.send<RowBatch<T>>(topo.hw_of(dest), tag, std::move(outgoing[dest]));
  }

  // Deposit one received batch into the target partition.
  auto deposit = [&](const RowBatch<T>& batch) {
    std::size_t data_offset = 0;
    for (std::size_t i = 0; i < batch.target_rows.size(); ++i) {
      const int row = batch.target_rows[i];
      const Bounds bounds = to.part_bounds();
      const int col_begin = bounds.lower[1];
      const int width = bounds.extent(1);
      const long offset =
          dist.local_offset(my_vrank, Index{row, col_begin});
      std::copy(batch.data.begin() + data_offset,
                batch.data.begin() + data_offset + width,
                dst.begin() + offset);
      data_offset += width;
    }
  };

  deposit(outgoing[my_vrank]);

  // Receive exactly the batches the inverse permutation predicts:
  // a source processor sends to us iff one of its rows lands in our
  // row range.  An empty partition (array smaller than the machine)
  // receives nothing.
  const Bounds my_bounds = to.part_bounds();
  std::vector<bool> expecting(p, false);
  if (my_bounds.extent(0) > 0 && my_bounds.extent(1) > 0) {
    for (int row = my_bounds.lower[0]; row < my_bounds.upper[0]; ++row) {
      const int source_row = inverse[row];
      const int source_vrank =
          dist.owner_vrank(Index{source_row, my_bounds.lower[1]});
      if (source_vrank != my_vrank) expecting[source_vrank] = true;
    }
  }
  for (int source = 0; source < p; ++source) {
    if (!expecting[source]) continue;
    const RowBatch<T> batch =
        proc.recv<RowBatch<T>>(topo.hw_of(source), tag);
    deposit(batch);
  }
}

}  // namespace skil
