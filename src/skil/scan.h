// array_scan: parallel prefix over a distributed array (extension).
//
// Not in the paper's skeleton list, but a standard data-parallel
// skeleton in the same family (and in the successor libraries Skil
// influenced).  Computes the inclusive prefix combination of all
// elements in global row-major order: out[i] = f(x_0, ..., x_i).
// Requires distributions whose local elements are a contiguous range
// of the global order (row blocks or 1-D blocks), which makes the
// result exactly the sequential scan.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "parix/collectives.h"
#include "parix/proc.h"
#include "skil/dist_array.h"
#include "skil/skeleton_fold.h"

namespace skil {

/// Inclusive prefix scan; `conv_f` lifts ($t1, Index) into the scan
/// domain and `scan_f` combines (associative).  Writes into `to`
/// (same placement as `a`, element type = scan domain).
template <class Conv, class Scan, class T1, class T2>
void array_scan(Conv conv_f, Scan scan_f, const DistArray<T1>& a,
                DistArray<T2>& to) {
  SKIL_REQUIRE(a.valid() && to.valid(), "array_scan: invalid array");
  const Distribution& dist = a.dist();
  SKIL_REQUIRE(dist.layout() == Layout::kBlock &&
                   dist.block_grid_cols() == 1,
               "array_scan requires a row-block distribution (local "
               "elements must be contiguous in the global order)");
  SKIL_REQUIRE(dist.same_placement(to.dist()),
               "array_scan: arrays must share one distribution");
  parix::Proc& proc = a.proc();
  const auto& src = a.local();
  auto& dst = to.local();

  // Local inclusive scan.
  std::optional<T2> acc;
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  for (const RowRun& run : a.my_runs())
    for (int c = 0; c < run.col_count; ++c) {
      T2 converted = detail::apply_conv_f(conv_f, src[offset],
                                          Index{run.row, run.col_begin + c});
      acc = acc.has_value() ? scan_f(std::move(*acc), std::move(converted))
                            : std::move(converted);
      dst[offset] = *acc;
      ++offset;
      ++elems;
    }
  proc.charge(parix::Op::kCall, 2 * elems);
  proc.charge(op_kind<T2>(), elems);

  // Exclusive offsets: every processor folds the totals of the
  // partitions preceding it in virtual-rank order.  The totals travel
  // once (allgather); p is small, so this is cheaper and simpler than
  // a distributed exclusive scan.
  const parix::Topology& topo = a.topology();
  std::vector<std::optional<T2>> totals =
      parix::allgather(proc, topo, acc);
  std::optional<T2> exclusive;
  for (int v = 0; v < a.my_vrank(); ++v) {
    if (!totals[v].has_value()) continue;
    exclusive = exclusive.has_value()
                    ? scan_f(std::move(*exclusive), *totals[v])
                    : *totals[v];
    proc.charge(parix::Op::kCall);
  }
  if (exclusive.has_value()) {
    for (std::size_t i = 0; i < dst.size(); ++i)
      dst[i] = scan_f(*exclusive, std::move(dst[i]));
    proc.charge(parix::Op::kCall, dst.size());
    proc.charge(op_kind<T2>(), dst.size());
  }
}

}  // namespace skil
