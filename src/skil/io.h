// Gathering and (parallel) I/O skeletons.
//
// The paper's section 6 lists "new skeletons, for instance for
// (parallel) I/O" as necessary future work; the programs themselves
// contain "/* output array c */" steps.  This header provides them:
// array_gather_all materialises the global array contents on every
// processor (used by the applications to return results and by the
// test suite to compare against sequential oracles), and array_write
// prints the array from processor 0 in a deterministic format.
#pragma once

#include <istream>
#include <ostream>
#include <vector>

#include "parix/collectives.h"
#include "parix/proc.h"
#include "skil/dist_array.h"
#include "support/matrix.h"

namespace skil {

namespace detail {

/// Assembles gathered partitions into row-major global order.
template <class T>
std::vector<T> assemble_global(const Distribution& dist,
                               const std::vector<std::vector<T>>& parts) {
  std::vector<T> global(static_cast<std::size_t>(dist.global_rows()) *
                        dist.global_cols());
  for (int vrank = 0; vrank < dist.nprocs(); ++vrank) {
    std::size_t offset = 0;
    const std::vector<T>& part = parts[vrank];
    for (const RowRun& run : dist.local_runs(vrank)) {
      const std::size_t base =
          static_cast<std::size_t>(run.row) * dist.global_cols() +
          run.col_begin;
      for (int c = 0; c < run.col_count; ++c)
        global[base + c] = part[offset++];
    }
  }
  return global;
}

}  // namespace detail

/// Collects the whole array on processor 0 only (the cheap variant the
/// applications use to output results, matching what a hand-written
/// program would do).  Returns the row-major contents on processor 0
/// and an empty vector elsewhere.
template <class T>
std::vector<T> array_gather_root(const DistArray<T>& a) {
  SKIL_REQUIRE(a.valid(), "array_gather_root: invalid array");
  parix::Proc& proc = a.proc();
  const parix::TraceSpan span(proc, "array_gather_root");
  const parix::Topology& topo = a.topology();
  std::vector<std::vector<T>> parts =
      parix::gather(proc, topo, /*root_hw=*/0, a.local());
  if (proc.id() != 0) return {};
  std::vector<T> global = detail::assemble_global(a.dist(), parts);
  proc.charge(parix::Op::kCopyWord,
              (global.size() * sizeof(T)) / sizeof(long) + 1);
  return global;
}

/// Collects the whole array in row-major global order on every
/// processor.  One gather along the tree plus one broadcast.
template <class T>
std::vector<T> array_gather_all(const DistArray<T>& a) {
  SKIL_REQUIRE(a.valid(), "array_gather_all: invalid array");
  parix::Proc& proc = a.proc();
  const parix::Topology& topo = a.topology();
  std::vector<std::vector<T>> parts =
      parix::allgather(proc, topo, a.local());
  std::vector<T> global = detail::assemble_global(a.dist(), parts);
  proc.charge(parix::Op::kCopyWord,
              (global.size() * sizeof(T)) / sizeof(long) + 1);
  return global;
}

/// Gathers a 2-D (or 1-D) array into a sequential support::Matrix on
/// every processor; the bridge between distributed results and the
/// sequential oracles.
template <class T>
support::Matrix<T> array_gather_matrix(const DistArray<T>& a) {
  const Distribution& dist = a.dist();
  std::vector<T> flat = array_gather_all(a);
  support::Matrix<T> m(dist.global_rows(), dist.global_cols());
  m.storage() = std::move(flat);
  return m;
}

/// Writes the array contents from processor 0 (collective: every
/// processor must call it).  Values are space-separated, one global
/// row per line.
template <class T>
void array_write(const DistArray<T>& a, std::ostream& os) {
  const std::vector<T> global = array_gather_all(a);
  if (a.proc().id() != 0) return;
  const int cols = a.dist().global_cols();
  for (std::size_t i = 0; i < global.size(); ++i) {
    os << global[i];
    os << ((static_cast<int>(i) % cols == cols - 1) ? '\n' : ' ');
  }
}

/// Scatters row-major global contents held on processor 0 into an
/// existing array: the inverse of array_gather_root, and the building
/// block of the input side of the paper's "(parallel) I/O" future
/// work.  `global` is read on processor 0 only.
template <class T>
void array_scatter_root(const std::vector<T>& global, DistArray<T>& a) {
  SKIL_REQUIRE(a.valid(), "array_scatter_root: invalid array");
  parix::Proc& proc = a.proc();
  const Distribution& dist = a.dist();
  const parix::Topology& topo = a.topology();
  const long tag = proc.fresh_tag();

  if (proc.id() == 0) {
    SKIL_REQUIRE(static_cast<long>(global.size()) ==
                     static_cast<long>(dist.global_rows()) *
                         dist.global_cols(),
                 "array_scatter_root: global size mismatch");
    for (int vrank = 0; vrank < topo.nprocs(); ++vrank) {
      std::vector<T> part;
      part.reserve(static_cast<std::size_t>(dist.local_count(vrank)));
      for (const RowRun& run : dist.local_runs(vrank)) {
        const std::size_t base =
            static_cast<std::size_t>(run.row) * dist.global_cols() +
            run.col_begin;
        part.insert(part.end(), global.begin() + base,
                    global.begin() + base + run.col_count);
      }
      const int hw = topo.hw_of(vrank);
      if (hw == 0)
        a.local() = std::move(part);
      else
        proc.send<std::vector<T>>(hw, tag, std::move(part));
    }
    proc.charge(parix::Op::kCopyWord,
                (global.size() * sizeof(T)) / sizeof(long) + 1);
  } else {
    a.local() = proc.recv<std::vector<T>>(0, tag);
  }
}

/// Reads an array from a stream (processor 0 reads, then scatters):
/// the format produced by array_write -- whitespace-separated values
/// in row-major order.  Collective.
template <class T>
void array_read(std::istream& is, DistArray<T>& a) {
  SKIL_REQUIRE(a.valid(), "array_read: invalid array");
  std::vector<T> global;
  if (a.proc().id() == 0) {
    const long count = static_cast<long>(a.dist().global_rows()) *
                       a.dist().global_cols();
    global.reserve(count);
    T value;
    for (long i = 0; i < count && (is >> value); ++i)
      global.push_back(value);
    SKIL_REQUIRE(static_cast<long>(global.size()) == count,
                 "array_read: stream ended before the array was full");
  }
  array_scatter_root(global, a);
}

}  // namespace skil
