// Overlapping partition borders (paper section 6, future work).
//
// "In the case of block distributions, it should be possible to define
// overlapping areas for the single partitions, in order to reduce
// communication in operations which require more than one element at a
// time.  Such operations are used for instance in solving partial
// differential equations or in image processing."
//
// This header implements that extension for row-block distributed
// arrays (full-width rows, the layout Gaussian elimination uses):
// array_exchange_borders fetches a halo of neighbouring rows in one
// message per neighbour, and array_map_stencil maps a neighbourhood
// function over the array, giving it access to a (2*halo+1)-row
// window.  The heat-equation example and the image-smoothing tests
// build on it.
#pragma once

#include <utility>
#include <vector>

#include "parix/collectives.h"
#include "parix/proc.h"
#include "skil/dist_array.h"

namespace skil {

/// Halo rows fetched from the neighbouring partitions.
template <class T>
struct Borders {
  int halo = 0;          ///< requested halo width in rows
  int top_rows = 0;      ///< rows actually present above the partition
  int bottom_rows = 0;   ///< rows actually present below the partition
  std::vector<T> top;    ///< row-major, the last `top_rows` rows above
  std::vector<T> bottom; ///< row-major, the first `bottom_rows` rows below
};

/// Exchanges `halo` boundary rows with the neighbouring partitions
/// (non-periodic: the global top/bottom partitions receive shorter or
/// empty halos).  Requires a row-block distribution.
template <class T>
Borders<T> array_exchange_borders(const DistArray<T>& a, int halo) {
  SKIL_REQUIRE(a.valid(), "array_exchange_borders: invalid array");
  const Distribution& dist = a.dist();
  SKIL_REQUIRE(dist.layout() == Layout::kBlock &&
                   dist.block_grid_cols() == 1,
               "array_exchange_borders requires a row-block distribution");
  SKIL_REQUIRE(halo >= 1, "array_exchange_borders: halo must be >= 1");
  parix::Proc& proc = a.proc();
  const parix::Topology& topo = a.topology();
  const long tag = topo.fresh_tag(proc);
  const int p = topo.nprocs();
  const int me = a.my_vrank();
  const Bounds bounds = a.part_bounds();
  const int my_rows = bounds.extent(0);
  const int width = dist.global_cols();
  const auto& local = a.local();

  // A halo wider than a partition would need multi-neighbour
  // forwarding; one-partition halos cover the paper's use cases.
  SKIL_REQUIRE(halo <= my_rows,
               "array_exchange_borders: halo exceeds the partition height");

  Borders<T> borders;
  borders.halo = halo;

  // Send my top rows up and my bottom rows down (asynchronously), then
  // receive the matching halos.  Ranks at the global edges skip the
  // missing neighbour.
  if (me > 0) {
    std::vector<T> rows(local.begin(),
                        local.begin() + static_cast<long>(halo) * width);
    proc.send<std::vector<T>>(topo.hw_of(me - 1), tag, std::move(rows));
  }
  if (me + 1 < p) {
    std::vector<T> rows(local.end() - static_cast<long>(halo) * width,
                        local.end());
    proc.send<std::vector<T>>(topo.hw_of(me + 1), tag + 1, std::move(rows));
  }
  if (me + 1 < p) {
    borders.bottom = proc.recv<std::vector<T>>(topo.hw_of(me + 1), tag);
    borders.bottom_rows = static_cast<int>(borders.bottom.size()) / width;
  }
  if (me > 0) {
    borders.top = proc.recv<std::vector<T>>(topo.hw_of(me - 1), tag + 1);
    borders.top_rows = static_cast<int>(borders.top.size()) / width;
  }
  return borders;
}

/// Read-only window over a partition plus its exchanged borders.
/// get(row, col) accepts *global* coordinates within the halo range;
/// in_domain says whether a coordinate is inside the global array.
template <class T>
class StencilView {
 public:
  StencilView(const DistArray<T>& a, const Borders<T>& borders)
      : local_(&a.local()), borders_(&borders),
        bounds_(a.part_bounds()), width_(a.dist().global_cols()),
        global_rows_(a.dist().global_rows()) {}

  bool in_domain(int row, int col) const {
    return row >= 0 && row < global_rows_ && col >= 0 && col < width_;
  }

  /// Element at global (row, col); the row must lie inside the
  /// partition or its halo.
  const T& get(int row, int col) const {
    if (row >= bounds_.lower[0] && row < bounds_.upper[0])
      return (*local_)[static_cast<std::size_t>(row - bounds_.lower[0]) *
                           width_ +
                       col];
    if (row < bounds_.lower[0]) {
      const int from_top = bounds_.lower[0] - row;
      SKIL_REQUIRE(from_top <= borders_->top_rows,
                   "stencil access above the exchanged halo");
      const int halo_row = borders_->top_rows - from_top;
      return borders_->top[static_cast<std::size_t>(halo_row) * width_ + col];
    }
    const int below = row - bounds_.upper[0];
    SKIL_REQUIRE(below < borders_->bottom_rows,
                 "stencil access below the exchanged halo");
    return borders_->bottom[static_cast<std::size_t>(below) * width_ + col];
  }

 private:
  const std::vector<T>* local_;
  const Borders<T>* borders_;
  Bounds bounds_;
  int width_;
  int global_rows_;
};

/// Maps a neighbourhood function over the array: for every element,
/// `stencil_f(view, ix)` may read any element within `halo` rows of
/// ix (and any column).  `from` and `to` must be distinct.
template <class F, class T>
void array_map_stencil(F stencil_f, const DistArray<T>& from,
                       DistArray<T>& to, int halo) {
  SKIL_REQUIRE(from.valid() && to.valid(),
               "array_map_stencil: invalid array");
  SKIL_REQUIRE(&from.local() != &to.local(),
               "array_map_stencil: arrays must be distinct (the window "
               "reads neighbours that an in-place update would clobber)");
  SKIL_REQUIRE(from.dist().same_placement(to.dist()),
               "array_map_stencil: arrays must share one distribution");
  const Borders<T> borders = array_exchange_borders(from, halo);
  const StencilView<T> view(from, borders);
  auto& dst = to.local();
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  for (const RowRun& run : from.my_runs())
    for (int c = 0; c < run.col_count; ++c) {
      dst[offset++] = stencil_f(view, Index{run.row, run.col_begin + c});
      ++elems;
    }
  from.proc().charge(parix::Op::kCall, elems);
  from.proc().charge(op_kind<T>(), elems);
}

}  // namespace skil
