// Lazy skeleton composition and fused execution (DESIGN.md section 13).
//
// A skeleton call chain like "map f, then map g over the result" pays
// two passes over the partition, two charge tails, and -- for folds
// and scans -- two collective rounds, even though the composition is
// one loop.  This header makes the composition *lazy*: stage objects
// (fuse::map, fuse::fold, fuse::scan) combine with operator| into a
// lightweight expression, and force() decides at the last moment how
// to run it:
//
//  * Proc::fusing() false (SKIL_FUSE=off, the default, or the
//    interpretive charge path): the expression executes literally as
//    today's back-to-back skeleton calls -- bit-identical virtual
//    times AND results to writing the calls out by hand.
//  * Proc::fusing() true: one fused pass with one charge tail; for
//    scan|fold the trailing allreduce disappears entirely (the scan's
//    allgathered partials already determine the total).  Array results
//    stay bit-identical -- the per-element composition and every fold
//    combine happen in the same order as unfused -- while virtual
//    times drop, which is the paper's cost model rewarding fewer
//    passes and synchronizations.
//
// Fusibility rules (after Kannan & Hamilton's list-skeleton
// transformations):
//   map f | map g        = map (g . f)           -- always safe
//   map f | fold(c, op)  = fold(c . f, op)       -- always safe
//   scan(c, op) | total  = scan + local fold of the allgathered
//                          partials               -- safe iff op is
//                          order-exact (integral domain): the unfused
//                          fold merges along the allreduce tree, and
//                          only exact arithmetic makes every merge
//                          order produce the same bits.  FP domains
//                          are rejected (FusionReject::kOrder) and run
//                          unfused.
#pragma once

#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "parix/charge_tape.h"
#include "parix/collectives.h"
#include "parix/proc.h"
#include "skil/dist_array.h"
#include "skil/scan.h"
#include "skil/skeleton_fold.h"
#include "skil/skeleton_map.h"

namespace skil::fuse {

// --- stages ----------------------------------------------------------------

template <class F>
struct MapStage {
  F f;
};
template <class F>
MapStage<std::decay_t<F>> map(F&& f) {
  return {std::forward<F>(f)};
}

template <class Conv, class Fold>
struct FoldStage {
  Conv conv;
  Fold fold;
};
template <class Conv, class Fold>
FoldStage<std::decay_t<Conv>, std::decay_t<Fold>> fold(Conv&& conv,
                                                       Fold&& fold_f) {
  return {std::forward<Conv>(conv), std::forward<Fold>(fold_f)};
}

template <class Conv, class Scan>
struct ScanStage {
  Conv conv;
  Scan scan;
};
template <class Conv, class Scan>
ScanStage<std::decay_t<Conv>, std::decay_t<Scan>> scan(Conv&& conv,
                                                       Scan&& scan_f) {
  return {std::forward<Conv>(conv), std::forward<Scan>(scan_f)};
}

/// Terminal stage asking a scan pipeline for the grand total (the
/// fold of all elements under the scan's combine).
struct TotalStage {};
inline TotalStage total() { return {}; }

// --- pipelines -------------------------------------------------------------

template <class F, class G>
struct MapMapExpr {
  F f;
  G g;
};
template <class F, class G>
MapMapExpr<F, G> operator|(MapStage<F> a, MapStage<G> b) {
  return {std::move(a.f), std::move(b.f)};
}

/// map | map | map chains re-associate left: ((f|g)|h) fuses into one
/// pass too.
template <class F, class G, class H>
MapMapExpr<MapMapExpr<F, G>, H> operator|(MapMapExpr<F, G> a, MapStage<H> b) {
  return {std::move(a), std::move(b.f)};
}

template <class F, class Conv, class Fold>
struct MapFoldExpr {
  F f;
  Conv conv;
  Fold fold;
};
template <class F, class Conv, class Fold>
MapFoldExpr<F, Conv, Fold> operator|(MapStage<F> a, FoldStage<Conv, Fold> b) {
  return {std::move(a.f), std::move(b.conv), std::move(b.fold)};
}

template <class Conv, class Scan>
struct ScanFoldExpr {
  Conv conv;
  Scan scan;
};
template <class Conv, class Scan>
ScanFoldExpr<Conv, Scan> operator|(ScanStage<Conv, Scan> a, TotalStage) {
  return {std::move(a.conv), std::move(a.scan)};
}

// --- forcing ---------------------------------------------------------------

namespace detail {

/// Applies a map stage, recursing through nested MapMapExpr so a
/// fused chain is one composed call per element.  A class-template
/// specialization (not an overload set) so the recursion resolves for
/// arbitrarily deep chains.
template <class F>
struct StageApplier {
  template <class T>
  static decltype(auto) apply(F& f, const T& elem, const Index& ix) {
    return skil::detail::apply_map_f(f, elem, ix);
  }
};
template <class F, class G>
struct StageApplier<MapMapExpr<F, G>> {
  template <class T>
  static decltype(auto) apply(MapMapExpr<F, G>& e, const T& elem,
                              const Index& ix) {
    return StageApplier<G>::apply(e.g, StageApplier<F>::apply(e.f, elem, ix),
                                  ix);
  }
};
template <class F, class T>
decltype(auto) apply_stage(F& f, const T& elem, const Index& ix) {
  return StageApplier<F>::apply(f, elem, ix);
}

/// Unfused execution of a (possibly nested) map chain: literally the
/// back-to-back array_map calls a hand-written program performs, with
/// the intermediate landing in `to` (in-situ for the later stages).
template <class F, class T1, class T2>
void run_unfused_maps(F& f, const DistArray<T1>& from, DistArray<T2>& to) {
  array_map(f, from, to);
}
template <class F, class G, class T1, class T2>
void run_unfused_maps(MapMapExpr<F, G>& e, const DistArray<T1>& from,
                      DistArray<T2>& to) {
  run_unfused_maps(e.f, from, to);
  array_map(e.g, to, to);
}

}  // namespace detail

/// Counts map stages in a chain type (1 for a plain functor).
template <class E>
struct MapStages {
  static constexpr std::uint64_t value = 1;
};
template <class F, class G>
struct MapStages<MapMapExpr<F, G>> {
  static constexpr std::uint64_t value =
      MapStages<F>::value + MapStages<G>::value;
};

/// Forces a map|map chain into `to`.  Unfused: the literal call
/// sequence (first map from->to, later maps in-situ on `to`).  Fused:
/// one pass applying the composed stages, one charge tail.
template <class F, class G, class T1, class T2>
void force(MapMapExpr<F, G> expr, const DistArray<T1>& from,
           DistArray<T2>& to) {
  parix::Proc& proc = from.proc();
  if (!proc.fusing()) {
    if (proc.fuse_mode() == parix::FuseMode::kOn)
      parix::note_fusion_rejected(parix::FusionReject::kPath);
    detail::run_unfused_maps(expr, from, to);
    return;
  }
  SKIL_REQUIRE(from.valid() && to.valid(), "fuse::force: invalid array");
  SKIL_REQUIRE(from.dist().same_placement(to.dist()),
               "fuse::force: source and target must share one distribution");
  const parix::TraceSpan span(proc, "fused_map");
  const auto& src = from.local();
  auto& dst = to.local();
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  for (const RowRun& run : from.my_runs())
    for (int c = 0; c < run.col_count; ++c) {
      dst[offset] = detail::apply_stage(expr, src[offset],
                                        Index{run.row, run.col_begin + c});
      ++offset;
      ++elems;
    }
  // One composed customizing function, so one call + one element op
  // per element -- the whole point of fusing (the eliminated stages'
  // tails are the vtime reduction).
  skil::detail::array_map_charge_tail<T2>(proc, elems);
  parix::note_fusion_fused(/*barriers=*/0,
                           /*tapes=*/MapStages<MapMapExpr<F, G>>::value - 1);
}

/// Forces a map|fold pipeline.  Unfused: map into `scratch`, then
/// fold scratch -- the literal call sequence, scratch holding the
/// materialized intermediate.  Fused: one fold pass with the
/// conversion composed over the map stage; `scratch` is untouched.
/// Either way every fold combine happens in the same order, so the
/// result is bit-identical across modes.
template <class F, class Conv, class Fold, class T1, class T2>
auto force(MapFoldExpr<F, Conv, Fold> expr, const DistArray<T1>& from,
           DistArray<T2>& scratch) {
  parix::Proc& proc = from.proc();
  if (!proc.fusing()) {
    if (proc.fuse_mode() == parix::FuseMode::kOn)
      parix::note_fusion_rejected(parix::FusionReject::kPath);
    detail::run_unfused_maps(expr.f, from, scratch);
    return array_fold(expr.conv, expr.fold, scratch);
  }
  auto fused_conv = [&expr](const T1& elem, const Index& ix) {
    return skil::detail::apply_conv_f(
        expr.conv, detail::apply_stage(expr.f, elem, ix), ix);
  };
  auto result = array_fold(fused_conv, expr.fold, from);
  parix::note_fusion_fused(/*barriers=*/0, /*tapes=*/MapStages<F>::value);
  return result;
}

/// Forces a scan|total pipeline: writes the inclusive prefix into
/// `to` and returns the grand total.  Unfused: array_scan then a full
/// array_fold (its own pass + allreduce).  Fused: the scan's
/// allgathered partition totals already determine the total, so the
/// fold pass and its allreduce vanish -- one genuine collective round
/// eliminated.  Requires an order-exact combine domain (integral):
/// the unfused fold merges along the allreduce tree in a different
/// order than rank order, and only exact arithmetic guarantees the
/// same bits either way.  FP domains are rejected and run unfused.
template <class Conv, class Scan, class T1, class T2>
T2 force(ScanFoldExpr<Conv, Scan> expr, const DistArray<T1>& from,
         DistArray<T2>& to) {
  parix::Proc& proc = from.proc();
  const bool order_exact = std::is_integral_v<T2>;
  if (!proc.fusing() || !order_exact) {
    if (proc.fuse_mode() == parix::FuseMode::kOn) {
      if (proc.fusing())
        parix::note_fusion_rejected(parix::FusionReject::kOrder);
      else
        parix::note_fusion_rejected(parix::FusionReject::kPath);
    }
    array_scan(expr.conv, expr.scan, from, to);
    return array_fold(expr.conv, expr.scan, from);
  }

  // Fused: the scan below is array_scan's exact loop and charge
  // sequence (scan.h), with one addition -- the allgathered partition
  // totals are folded once more, in virtual-rank order, to the grand
  // total.  For an integral (exact, associative, commutative) combine
  // this equals the unfused allreduce fold bit-for-bit.
  SKIL_REQUIRE(from.valid() && to.valid(), "fuse::force: invalid array");
  const Distribution& dist = from.dist();
  SKIL_REQUIRE(dist.layout() == Layout::kBlock && dist.block_grid_cols() == 1,
               "array_scan requires a row-block distribution (local "
               "elements must be contiguous in the global order)");
  SKIL_REQUIRE(dist.same_placement(to.dist()),
               "fuse::force: arrays must share one distribution");
  const parix::TraceSpan span(proc, "fused_scan_total");
  const auto& src = from.local();
  auto& dst = to.local();
  std::optional<T2> acc;
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  for (const RowRun& run : from.my_runs())
    for (int c = 0; c < run.col_count; ++c) {
      T2 converted = skil::detail::apply_conv_f(
          expr.conv, src[offset], Index{run.row, run.col_begin + c});
      acc = acc.has_value() ? expr.scan(std::move(*acc), std::move(converted))
                            : std::move(converted);
      dst[offset] = *acc;
      ++offset;
      ++elems;
    }
  proc.charge(parix::Op::kCall, 2 * elems);
  proc.charge(op_kind<T2>(), elems);

  const parix::Topology& topo = from.topology();
  std::vector<std::optional<T2>> totals = parix::allgather(proc, topo, acc);
  std::optional<T2> exclusive;
  for (int v = 0; v < from.my_vrank(); ++v) {
    if (!totals[v].has_value()) continue;
    exclusive = exclusive.has_value()
                    ? expr.scan(std::move(*exclusive), *totals[v])
                    : *totals[v];
    proc.charge(parix::Op::kCall);
  }
  if (exclusive.has_value()) {
    for (std::size_t i = 0; i < dst.size(); ++i)
      dst[i] = expr.scan(*exclusive, std::move(dst[i]));
    proc.charge(parix::Op::kCall, dst.size());
    proc.charge(op_kind<T2>(), dst.size());
  }

  // Grand total from the same allgathered partials, folded in rank
  // order (charged like the eliminated allreduce's combines, minus
  // its messages).
  std::optional<T2> grand;
  for (const std::optional<T2>& t : totals) {
    if (!t.has_value()) continue;
    if (grand.has_value()) {
      grand = expr.scan(std::move(*grand), *t);
      proc.charge(parix::Op::kCall);
    } else {
      grand = *t;
    }
  }
  SKIL_REQUIRE(grand.has_value(), "fuse::force: array has no elements");
  parix::note_fusion_fused(/*barriers=*/1, /*tapes=*/1);
  return *grand;
}

}  // namespace skil::fuse
