// The farm skeleton: process-parallel task distribution (extension).
//
// The paper's introduction lists "map, farm and divide&conquer" as the
// classical skeletons and notes that process-parallel skeletons "can
// be integrated in Skil" even though its emphasis is data parallelism.
// This is the integration: the master (virtual rank 0) deals a vector
// of independent tasks round-robin to all processors (itself
// included), every processor applies the worker function to its share,
// and the results return to the master in task order.
//
// Tasks and results travel as one batch message per processor, so the
// farm's communication is 2(p-1) messages regardless of task count.
#pragma once

#include <type_traits>
#include <utility>
#include <vector>

#include "parix/collectives.h"
#include "parix/proc.h"
#include "parix/topology.h"

namespace skil {

/// Runs `worker` over `tasks` (significant on the master only);
/// returns the results in task order on the master, an empty vector
/// elsewhere.  Collective: every processor must call it.
template <class Worker, class In>
auto farm(parix::Proc& proc, const parix::Topology& topo, Worker worker,
          const std::vector<In>& tasks) {
  using Out = std::decay_t<decltype(worker(std::declval<const In&>()))>;
  const int p = topo.nprocs();
  const int master = topo.hw_of(0);
  const long tag = proc.fresh_tag();

  // Master deals tasks round-robin: worker v gets tasks v, v+p, ...
  long total = static_cast<long>(tasks.size());
  parix::broadcast(proc, topo, master, total);

  std::vector<In> my_tasks;
  if (proc.id() == master) {
    for (int vrank = 0; vrank < p; ++vrank) {
      std::vector<In> batch;
      for (long t = vrank; t < total; t += p) batch.push_back(tasks[t]);
      if (vrank == 0)
        my_tasks = std::move(batch);
      else
        proc.send<std::vector<In>>(topo.hw_of(vrank), tag, std::move(batch));
    }
  } else {
    my_tasks = proc.recv<std::vector<In>>(master, tag);
  }

  std::vector<Out> my_results;
  my_results.reserve(my_tasks.size());
  for (const In& task : my_tasks) my_results.push_back(worker(task));
  proc.charge(parix::Op::kCall, my_tasks.size());

  // Results travel back as one batch per worker; the master interleaves
  // them back into task order.
  if (proc.id() != master) {
    proc.send<std::vector<Out>>(master, tag + 1, std::move(my_results));
    return std::vector<Out>{};
  }
  std::vector<Out> all(static_cast<std::size_t>(total));
  auto deal_back = [&](int vrank, std::vector<Out>&& batch) {
    std::size_t i = 0;
    for (long t = vrank; t < total; t += p) all[t] = std::move(batch[i++]);
  };
  deal_back(0, std::move(my_results));
  for (int vrank = 1; vrank < p; ++vrank)
    deal_back(vrank,
              proc.recv<std::vector<Out>>(topo.hw_of(vrank), tag + 1));
  return all;
}

}  // namespace skil
