// array_map, array_zip and array_copy (paper section 3).
//
//   void array_map($t2 map_f($t1, Index), array <$t1> from, array <$t2> to);
//   void array_copy(array <$t> from, array <$t> to);
//
// array_map applies the functional argument to every element of `from`
// and writes the results into `to`; "the two arrays can be identical;
// in this case the skeleton does an in-situ replacement".  The target
// array must already exist -- the paper deliberately fills an existing
// array instead of returning a new one to avoid temporary allocations,
// an optimisation "not possible in functional host languages".
//
// array_copy exploits the contiguous partition representation and
// copies wholesale instead of mapping the identity function, exactly
// as motivated in the paper.
//
// array_zip is our natural n-ary extension (a two-source map), needed
// by several examples and by the stencil machinery.
#pragma once

#include <cstring>
#include <type_traits>

#include "parix/charge_tape.h"
#include "parix/proc.h"
#include "skil/dist_array.h"

namespace skil {

namespace detail {

/// Invokes a map functional argument with or without the Index
/// parameter, whichever the callable accepts (the paper's map_f always
/// takes the index; the index-free form is a convenience).
template <class F, class T>
decltype(auto) apply_map_f(F& map_f, const T& elem, const Index& ix) {
  if constexpr (std::is_invocable_v<F&, const T&, Index>) {
    return map_f(elem, ix);
  } else {
    return map_f(elem);
  }
}

/// The bulk tail charges shared by array_map and array_map_taped (one
/// first-order call plus one element operation per element).  Sink-
/// templated: array_map books them eagerly on the Proc, the taped
/// variant through a parix::DeferredCharges sink so the skeleton's
/// whole charge sequence stays in the deferred ledger until the next
/// observation point (same entries, same order -- settlement cannot
/// tell the difference).
template <class T2, class Sink>
inline void array_map_charge_tail(Sink& sink, std::uint64_t elems) {
  sink.charge_elems(parix::Op::kCall, elems);
  sink.charge_elems(op_kind<T2>(), elems);
}

}  // namespace detail

/// Applies `map_f` to all elements of `from`, writing into `to`.
/// The arrays may be the same object (in-situ replacement).
///
/// Cost model (per element): one first-order call to the instantiated
/// functional argument plus one element operation.
template <class F, class T1, class T2>
void array_map(F map_f, const DistArray<T1>& from, DistArray<T2>& to) {
  SKIL_REQUIRE(from.valid() && to.valid(), "array_map: invalid array");
  SKIL_REQUIRE(from.dist().same_placement(to.dist()),
               "array_map: source and target must share one distribution");
  const parix::TraceSpan span(from.proc(), "array_map");
  const auto& src = from.local();
  auto& dst = to.local();
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  for (const RowRun& run : from.my_runs())
    for (int c = 0; c < run.col_count; ++c) {
      dst[offset] = detail::apply_map_f(map_f, src[offset],
                                        Index{run.row, run.col_begin + c});
      ++offset;
      ++elems;
    }
  detail::array_map_charge_tail<T2>(from.proc(), elems);
}

/// Tape-specialized array_map.  `map_f` is a plain functor
/// `T2(const T1&, Index, std::uint64_t& tapped)` performing raw reads
/// (get_elem_uncharged) and bumping `tapped` once per element whose
/// interpretive body would have charged `tape`'s sequence; the loop
/// replays the tape `tapped` times, then books the same bulk tail
/// charges as array_map.  Chain-identical to array_map with a functor
/// whose active elements all charge `tape`'s sequence (DESIGN.md
/// section 8).
///
/// Callers should hoist the tape out of any loop that maps repeatedly
/// with the same charge sequence: a tape's identity (ChargeTape::id)
/// keys the settlement memo (DESIGN.md section 12), so reusing one
/// tape lets every replay after the first settle as a cached
/// closed-form walk, while rebuilding it per call is memo-cold
/// (bit-identical either way).
template <class F, class T1, class T2>
void array_map_taped(F map_f, const parix::ChargeTape& tape,
                     const DistArray<T1>& from, DistArray<T2>& to) {
  SKIL_REQUIRE(from.valid() && to.valid(), "array_map: invalid array");
  SKIL_REQUIRE(from.dist().same_placement(to.dist()),
               "array_map: source and target must share one distribution");
  const parix::TraceSpan span(from.proc(), "array_map");
  const auto& src = from.local();
  auto& dst = to.local();
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  std::uint64_t tapped = 0;
  for (const RowRun& run : from.my_runs())
    for (int c = 0; c < run.col_count; ++c) {
      dst[offset] =
          map_f(src[offset], Index{run.row, run.col_begin + c}, tapped);
      ++offset;
      ++elems;
    }
  from.proc().replay(tape, tapped);
  parix::DeferredCharges deferred(from.proc());
  detail::array_map_charge_tail<T2>(deferred, elems);
}

/// Two-source map: to[i] = zip_f(a[i], b[i], i).  Extension skeleton.
template <class F, class T1, class T2, class T3>
void array_zip(F zip_f, const DistArray<T1>& a, const DistArray<T2>& b,
               DistArray<T3>& to) {
  SKIL_REQUIRE(a.valid() && b.valid() && to.valid(),
               "array_zip: invalid array");
  SKIL_REQUIRE(a.dist().same_placement(b.dist()) &&
                   a.dist().same_placement(to.dist()),
               "array_zip: all arrays must share one distribution");
  const parix::TraceSpan span(a.proc(), "array_zip");
  const auto& sa = a.local();
  const auto& sb = b.local();
  auto& dst = to.local();
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  for (const RowRun& run : a.my_runs())
    for (int c = 0; c < run.col_count; ++c) {
      const Index ix{run.row, run.col_begin + c};
      if constexpr (std::is_invocable_v<F&, const T1&, const T2&, Index>) {
        dst[offset] = zip_f(sa[offset], sb[offset], ix);
      } else {
        dst[offset] = zip_f(sa[offset], sb[offset]);
      }
      ++offset;
      ++elems;
    }
  a.proc().charge_elems(parix::Op::kCall, elems);
  a.proc().charge_elems(op_kind<T3>(), elems);
}

/// Copies `from` into the previously created `to`.  "As array
/// partitions are internally represented as contiguous memory areas,
/// copying can be done very efficiently" -- the cost is pure memory
/// traffic, with no per-element function calls.
template <class T>
void array_copy(const DistArray<T>& from, DistArray<T>& to) {
  SKIL_REQUIRE(from.valid() && to.valid(), "array_copy: invalid array");
  if (&from.local() == &to.local()) return;  // self-copy is a no-op
  SKIL_REQUIRE(from.dist().same_placement(to.dist()),
               "array_copy: source and target must share one distribution");
  const parix::TraceSpan span(from.proc(), "array_copy");
  to.local() = from.local();
  const std::uint64_t words =
      (from.local().size() * sizeof(T) + sizeof(long) - 1) / sizeof(long);
  from.proc().charge(parix::Op::kCopyWord, words);
}

}  // namespace skil
