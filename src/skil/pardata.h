// The `pardata` construct (paper section 2.3) in library form.
//
//   pardata name <$t1, ..., $tn> implem [<type args>];
//
// A pardata is "composed of identical data structures placed on each
// processor"; its implementation is hidden, and skeletons are the only
// way to operate on it globally.  The distributed array of
// skil/dist_array.h is the canonical instance.  This header provides
// the general construct: Pardata<L> places one local structure of type
// L on every processor, and a small set of generic skeletons operate
// on the ensemble.  The test suite instantiates it with a distributed
// hash-partitioned multiset; nesting pardatas is rejected, matching
// the paper's "distributed data structures may not be nested".
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

#include "parix/collectives.h"
#include "parix/proc.h"
#include "parix/topology.h"
#include "support/error.h"

namespace skil {

template <class L>
class Pardata;

namespace detail {
template <class T>
struct is_pardata : std::false_type {};
template <class L>
struct is_pardata<Pardata<L>> : std::true_type {};
}  // namespace detail

/// A distributed structure: one `L` per processor.
template <class L>
class Pardata {
 public:
  static_assert(!detail::is_pardata<L>::value,
                "pardata structures may not be nested (paper section 2.3)");

  Pardata() = default;

  /// Creates the pardata with each processor's local part built by
  /// `init(vrank, nprocs)`.
  template <class InitFn>
  Pardata(parix::Proc& proc, parix::Distr distr, InitFn&& init)
      : proc_(&proc),
        topo_(std::make_shared<const parix::Topology>(proc.machine(), distr)),
        local_(init(topo_->vrank_of(proc.id()), topo_->nprocs())) {}

  bool valid() const { return topo_ != nullptr; }

  parix::Proc& proc() const {
    SKIL_REQUIRE(valid(), "pardata was destroyed or never created");
    return *proc_;
  }
  const parix::Topology& topology() const {
    SKIL_REQUIRE(valid(), "pardata was destroyed or never created");
    return *topo_;
  }
  int my_vrank() const { return topology().vrank_of(proc().id()); }
  int nprocs() const { return topology().nprocs(); }

  /// The hidden local implementation; skeletons and pardata authors
  /// use it, applications should not (the paper keeps `implem`
  /// invisible).
  L& local() {
    SKIL_REQUIRE(valid(), "pardata was destroyed or never created");
    return local_;
  }
  const L& local() const {
    SKIL_REQUIRE(valid(), "pardata was destroyed or never created");
    return local_;
  }

  void destroy() {
    topo_.reset();
    local_ = L{};
  }

 private:
  parix::Proc* proc_ = nullptr;
  std::shared_ptr<const parix::Topology> topo_;
  L local_{};
};

/// Applies `f(local, vrank)` on every processor (purely local work).
template <class F, class L>
void pardata_map(F f, Pardata<L>& pd) {
  pd.proc().charge(parix::Op::kCall);
  f(pd.local(), pd.my_vrank());
}

/// Folds per-processor summaries: `summarise(local, vrank)` produces a
/// value on each processor, `fold_f` combines them along the tree, and
/// every processor receives the result.
template <class Summarise, class Fold, class L>
auto pardata_fold(Summarise summarise, Fold fold_f, const Pardata<L>& pd) {
  using S = std::decay_t<decltype(summarise(pd.local(), 0))>;
  pd.proc().charge(parix::Op::kCall);
  S local = summarise(pd.local(), pd.my_vrank());
  return parix::allreduce(pd.proc(), pd.topology(), std::move(local),
                          [&](S a, S b) {
                            pd.proc().charge(parix::Op::kCall);
                            return fold_f(std::move(a), std::move(b));
                          });
}

/// Exchanges a value with the ring neighbours: sends
/// `make_payload(local)` to the next processor and hands the payload
/// arriving from the previous one to `receive(local, payload)`.
template <class MakePayload, class Receive, class L>
void pardata_ring_exchange(MakePayload make_payload, Receive receive,
                           Pardata<L>& pd) {
  using P = std::decay_t<decltype(make_payload(pd.local()))>;
  pd.proc().charge(parix::Op::kCall, 2);
  P incoming = parix::ring_shift(pd.proc(), pd.topology(),
                                 make_payload(pd.local()));
  receive(pd.local(), std::move(incoming));
}

}  // namespace skil
