#include "skil/index.h"

#include <sstream>

namespace skil {

bool Bounds::contains(const Index& ix, int dims) const {
  for (int d = 0; d < dims; ++d)
    if (ix[d] < lower[d] || ix[d] >= upper[d]) return false;
  return true;
}

int Bounds::extent(int d) const {
  const int e = upper[d] - lower[d];
  return e > 0 ? e : 0;
}

long Bounds::volume(int dims) const {
  long vol = 1;
  for (int d = 0; d < dims; ++d) vol *= extent(d);
  return vol;
}

std::string to_string(const Index& ix, int dims) {
  std::ostringstream os;
  os << '(';
  for (int d = 0; d < dims; ++d) {
    if (d) os << ", ";
    os << ix[d];
  }
  os << ')';
  return os.str();
}

std::string to_string(const Bounds& b, int dims) {
  return to_string(b.lower, dims) + ".." + to_string(b.upper, dims);
}

}  // namespace skil
