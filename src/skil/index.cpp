#include "skil/index.h"

#include <sstream>

namespace skil {

std::string to_string(const Index& ix, int dims) {
  std::ostringstream os;
  os << '(';
  for (int d = 0; d < dims; ++d) {
    if (d) os << ", ";
    os << ix[d];
  }
  os << ')';
  return os.str();
}

std::string to_string(const Bounds& b, int dims) {
  return to_string(b.lower, dims) + ".." + to_string(b.upper, dims);
}

}  // namespace skil
