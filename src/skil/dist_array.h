// The paper's `pardata array <$t>`: a block-distributed array whose
// implementation is hidden behind skeletons and local-access macros.
//
// Each SPMD processor holds its own DistArray<T> value containing the
// global distribution metadata plus that processor's partition
// elements.  As in the paper, single elements can be read or written
// *locally only* (array_get_elem / array_put_elem); any non-local
// element access raises NonLocalAccessError, because "remote accessing
// of single array elements easily leads to very inefficient programs".
// Non-local data movement happens exclusively through the skeletons in
// skil/skeletons.h.
#pragma once

#include <memory>
#include <type_traits>
#include <vector>

#include "parix/proc.h"
#include "skil/distribution.h"

namespace skil {

/// Cost-model operation kind for elements of type T.
template <class T>
constexpr parix::Op op_kind() {
  return std::is_floating_point_v<T> ? parix::Op::kFloatOp
                                     : parix::Op::kIntOp;
}

template <class T>
class DistArray {
 public:
  using value_type = T;

  /// An empty (never-created or destroyed) array handle.
  DistArray() = default;

  /// Used by array_create; not part of the public paper API.
  DistArray(parix::Proc& proc, std::shared_ptr<const Distribution> dist)
      : proc_(&proc), dist_(std::move(dist)),
        local_(static_cast<std::size_t>(
            dist_->local_count(dist_->topology().vrank_of(proc.id())))) {}

  bool valid() const { return dist_ != nullptr; }

  parix::Proc& proc() const {
    SKIL_REQUIRE(valid(), "array was destroyed or never created");
    return *proc_;
  }

  const Distribution& dist() const {
    SKIL_REQUIRE(valid(), "array was destroyed or never created");
    return *dist_;
  }

  std::shared_ptr<const Distribution> dist_ptr() const { return dist_; }

  const parix::Topology& topology() const { return dist().topology(); }

  /// Virtual rank of the owning processor within the array's topology.
  int my_vrank() const { return topology().vrank_of(proc().id()); }

  /// The paper's array_part_bounds macro: the local partition's index
  /// box (block layout).
  Bounds part_bounds() const { return dist().partition_bounds(my_vrank()); }

  /// The paper's array_get_elem macro: reads a *local* element.
  T get_elem(const Index& ix) const {
    check_local(ix);
    proc_->charge(op_kind<T>());
    return local_[dist_->local_offset(my_vrank(), ix)];
  }

  /// The paper's array_put_elem macro: overwrites a *local* element.
  void put_elem(const Index& ix, T value) {
    check_local(ix);
    proc_->charge(op_kind<T>());
    local_[dist_->local_offset(my_vrank(), ix)] = std::move(value);
  }

  /// Direct access to the partition storage (used by skeletons and by
  /// the hand-written Parix-C baselines; not part of the Skil surface).
  std::vector<T>& local() {
    SKIL_REQUIRE(valid(), "array was destroyed or never created");
    return local_;
  }
  const std::vector<T>& local() const {
    SKIL_REQUIRE(valid(), "array was destroyed or never created");
    return local_;
  }

  /// The local row runs of this processor's partition.
  const std::vector<RowRun>& my_runs() const {
    return dist().local_runs(my_vrank());
  }

  /// Releases the storage; the handle becomes invalid.  Implements the
  /// paper's array_destroy (RAII destroys unreleased arrays anyway).
  void destroy() {
    dist_.reset();
    local_.clear();
    local_.shrink_to_fit();
  }

  /// True when both handles view the same partition storage shape --
  /// used to detect the aliasing array_gen_mult forbids.  Two distinct
  /// SPMD-created arrays always differ in storage address.
  bool aliases(const DistArray& other) const {
    return valid() && other.valid() && &local_ == &other.local_;
  }

 private:
  void check_local(const Index& ix) const {
    SKIL_REQUIRE(valid(), "array was destroyed or never created");
    const int vrank = my_vrank();
    if (dist_->layout() == Layout::kBlock) {
      const Bounds bounds = dist_->partition_bounds(vrank);
      if (!bounds.contains(ix, dist_->dims()))
        throw support::NonLocalAccessError(
            "element " + to_string(ix, dist_->dims()) +
            " is not in the local partition " +
            to_string(bounds, dist_->dims()));
    } else if (dist_->owner_vrank(ix) != vrank) {
      throw support::NonLocalAccessError(
          "element " + to_string(ix, dist_->dims()) +
          " is not stored on this processor");
    }
  }

  parix::Proc* proc_ = nullptr;
  std::shared_ptr<const Distribution> dist_;
  std::vector<T> local_;
};

}  // namespace skil
