// The paper's `pardata array <$t>`: a block-distributed array whose
// implementation is hidden behind skeletons and local-access macros.
//
// Each SPMD processor holds its own DistArray<T> value containing the
// global distribution metadata plus that processor's partition
// elements.  As in the paper, single elements can be read or written
// *locally only* (array_get_elem / array_put_elem); any non-local
// element access raises NonLocalAccessError, because "remote accessing
// of single array elements easily leads to very inefficient programs".
// Non-local data movement happens exclusively through the skeletons in
// skil/skeletons.h.
#pragma once

#include <memory>
#include <type_traits>
#include <vector>

#include "parix/proc.h"
#include "skil/distribution.h"

namespace skil {

/// Cost-model operation kind for elements of type T.
template <class T>
constexpr parix::Op op_kind() {
  return std::is_floating_point_v<T> ? parix::Op::kFloatOp
                                     : parix::Op::kIntOp;
}

template <class T>
class DistArray {
 public:
  using value_type = T;

  /// An empty (never-created or destroyed) array handle.
  DistArray() = default;

  /// Used by array_create; not part of the public paper API.
  DistArray(parix::Proc& proc, std::shared_ptr<const Distribution> dist)
      : proc_(&proc), dist_(std::move(dist)),
        local_(static_cast<std::size_t>(
            dist_->local_count(dist_->topology().vrank_of(proc.id())))) {
    // Partition geometry is immutable, so the per-access macros below
    // resolve locality and offsets from these cached values instead of
    // recomputing partition_bounds per element (the dominant host cost
    // of element-wise skeleton arguments before this cache existed).
    my_vrank_ = dist_->topology().vrank_of(proc.id());
    dims_ = dist_->dims();
    block_ = dist_->layout() == Layout::kBlock;
    if (block_) {
      bounds_ = dist_->partition_bounds(my_vrank_);
      row0_ = bounds_.lower[0];
      col0_ = dims_ >= 2 ? bounds_.lower[1] : 0;
      width_ = dims_ >= 2 ? bounds_.extent(1) : 1;
    }
  }

  bool valid() const { return dist_ != nullptr; }

  parix::Proc& proc() const {
    SKIL_REQUIRE(valid(), "array was destroyed or never created");
    return *proc_;
  }

  const Distribution& dist() const {
    SKIL_REQUIRE(valid(), "array was destroyed or never created");
    return *dist_;
  }

  std::shared_ptr<const Distribution> dist_ptr() const { return dist_; }

  const parix::Topology& topology() const { return dist().topology(); }

  /// Virtual rank of the owning processor within the array's topology.
  int my_vrank() const {
    SKIL_REQUIRE(valid(), "array was destroyed or never created");
    return my_vrank_;
  }

  /// The paper's array_part_bounds macro: the local partition's index
  /// box (block layout).
  Bounds part_bounds() const {
    if (block_) return bounds_;
    return dist().partition_bounds(my_vrank());
  }

  /// The paper's array_get_elem macro: reads a *local* element.
  T get_elem(const Index& ix) const {
    if (block_ && bounds_.contains(ix, dims_)) [[likely]] {
      proc_->charge(op_kind<T>());
      return local_[local_offset_fast(ix)];
    }
    check_local(ix);  // throws for non-local / invalid; cyclic falls through
    proc_->charge(op_kind<T>());
    return local_[dist_->local_offset(my_vrank_, ix)];
  }

  /// The raw read of get_elem with no element-operation charge:
  /// tape-specialized skeleton loops (array_map_taped) read through
  /// this and account through a replayed charge tape instead.
  T get_elem_uncharged(const Index& ix) const {
    if (block_ && bounds_.contains(ix, dims_)) [[likely]]
      return local_[local_offset_fast(ix)];
    check_local(ix);
    return local_[dist_->local_offset(my_vrank_, ix)];
  }

  /// The paper's array_put_elem macro: overwrites a *local* element.
  void put_elem(const Index& ix, T value) {
    if (block_ && bounds_.contains(ix, dims_)) [[likely]] {
      proc_->charge(op_kind<T>());
      local_[local_offset_fast(ix)] = std::move(value);
      return;
    }
    check_local(ix);
    proc_->charge(op_kind<T>());
    local_[dist_->local_offset(my_vrank_, ix)] = std::move(value);
  }

  /// Direct access to the partition storage (used by skeletons and by
  /// the hand-written Parix-C baselines; not part of the Skil surface).
  std::vector<T>& local() {
    SKIL_REQUIRE(valid(), "array was destroyed or never created");
    return local_;
  }
  const std::vector<T>& local() const {
    SKIL_REQUIRE(valid(), "array was destroyed or never created");
    return local_;
  }

  /// The local row runs of this processor's partition.
  const std::vector<RowRun>& my_runs() const {
    return dist().local_runs(my_vrank());
  }

  /// Releases the storage; the handle becomes invalid.  Implements the
  /// paper's array_destroy (RAII destroys unreleased arrays anyway).
  void destroy() {
    dist_.reset();
    block_ = false;  // disable the cached fast path with the handle
    local_.clear();
    local_.shrink_to_fit();
  }

  /// True when both handles view the same partition storage shape --
  /// used to detect the aliasing array_gen_mult forbids.  Two distinct
  /// SPMD-created arrays always differ in storage address.
  bool aliases(const DistArray& other) const {
    return valid() && other.valid() && &local_ == &other.local_;
  }

 private:
  /// Storage offset of a contained index (block layout only).
  std::size_t local_offset_fast(const Index& ix) const {
    const int col = dims_ >= 2 ? ix[1] : 0;
    return static_cast<std::size_t>(
        static_cast<long>(ix[0] - row0_) * width_ + (col - col0_));
  }

  void check_local(const Index& ix) const {
    SKIL_REQUIRE(valid(), "array was destroyed or never created");
    const int vrank = my_vrank();
    if (dist_->layout() == Layout::kBlock) {
      const Bounds bounds = dist_->partition_bounds(vrank);
      if (!bounds.contains(ix, dist_->dims()))
        throw support::NonLocalAccessError(
            "element " + to_string(ix, dist_->dims()) +
            " is not in the local partition " +
            to_string(bounds, dist_->dims()));
    } else if (dist_->owner_vrank(ix) != vrank) {
      throw support::NonLocalAccessError(
          "element " + to_string(ix, dist_->dims()) +
          " is not stored on this processor");
    }
  }

  parix::Proc* proc_ = nullptr;
  std::shared_ptr<const Distribution> dist_;
  std::vector<T> local_;
  // Cached partition geometry (see the array_create constructor).
  Bounds bounds_;
  int my_vrank_ = 0;
  int dims_ = 1;
  int row0_ = 0;
  int col0_ = 0;
  int width_ = 1;
  bool block_ = false;
};

}  // namespace skil
