// array_transpose: matrix transposition over the torus (extension).
//
// For a square array in the square block grid array_gen_mult uses,
// the transpose is one message per processor: block (R,C) is
// transposed locally and sent to the processor holding block (C,R).
// A natural companion of array_gen_mult (e.g. for forming A^T A) and a
// further example of coordinated non-local data movement behind a
// skeleton interface.
#pragma once

#include <utility>
#include <vector>

#include "parix/proc.h"
#include "skil/dist_array.h"

namespace skil {

/// Writes the transpose of `from` into `to`; the arrays must be
/// distinct, square, and block-distributed on a square processor grid
/// with matching block and processor grids (as array_gen_mult needs).
template <class T>
void array_transpose(const DistArray<T>& from, DistArray<T>& to) {
  SKIL_REQUIRE(from.valid() && to.valid(), "array_transpose: invalid array");
  SKIL_REQUIRE(&from.local() != &to.local(),
               "array_transpose: arrays must be distinct");
  const Distribution& dist = from.dist();
  SKIL_REQUIRE(dist.dims() == 2 && dist.layout() == Layout::kBlock,
               "array_transpose needs a 2-D block-distributed array");
  SKIL_REQUIRE(dist.same_placement(to.dist()),
               "array_transpose: arrays must share one distribution");
  const parix::Topology& topo = from.topology();
  SKIL_REQUIRE(dist.block_grid_matches(topo),
               "array_transpose: block grid must match the processor grid");
  SKIL_REQUIRE(topo.grid_rows() == topo.grid_cols(),
               "array_transpose needs a square processor grid");
  const int n = dist.global_rows();
  SKIL_REQUIRE(n == dist.global_cols(), "array_transpose: array not square");
  const int q = topo.grid_rows();
  SKIL_REQUIRE(n % q == 0,
               "array_transpose: the grid side must divide the array size");
  const int block = n / q;

  parix::Proc& proc = from.proc();
  const int my_row = topo.grid_row(proc.id());
  const int my_col = topo.grid_col(proc.id());

  // Transpose the local block into a send buffer.
  const auto& src = from.local();
  std::vector<T> buffer(src.size());
  for (int i = 0; i < block; ++i)
    for (int j = 0; j < block; ++j)
      buffer[static_cast<std::size_t>(j) * block + i] =
          src[static_cast<std::size_t>(i) * block + j];
  proc.charge(parix::Op::kCopyWord,
              buffer.size() * sizeof(T) / sizeof(long) + 1);

  const long tag = topo.fresh_tag(proc);
  const int partner = topo.at_grid(my_col, my_row);
  if (partner == proc.id()) {
    to.local() = std::move(buffer);
    return;
  }
  proc.send<std::vector<T>>(partner, tag, std::move(buffer));
  to.local() = proc.recv<std::vector<T>>(partner, tag);
}

}  // namespace skil
