// Umbrella header: the complete Skil skeleton library.
//
// Skil (Botorog & Kuchen, HPDC 1996) is an imperative language with
// algorithmic skeletons on distributed arrays.  This library is its
// C++20 reproduction: the skeletons are function templates (the C++
// compiler performs the paper's instantiation translation), the
// distributed array is skil::DistArray<T>, and programs run SPMD on
// the Parix-like runtime in parix/.
//
// Paper skeletons:          array_create, array_destroy, array_map,
//                           array_fold, array_copy, array_broadcast_part,
//                           array_gen_mult, array_permute_rows,
//                           array_part_bounds / get_elem / put_elem
//                           (methods on DistArray).
// Future-work extensions:   cyclic and block-cyclic distributions,
//                           border exchange + stencil map, scan,
//                           gather / I/O, the generic pardata construct.
// Functional features:      currying, partial application, operator
//                           sections (skil/functional.h).
#pragma once

#include "skil/dist_array.h"
#include "skil/distribution.h"
#include "skil/farm.h"
#include "skil/functional.h"
#include "skil/index.h"
#include "skil/io.h"
#include "skil/pardata.h"
#include "skil/rows.h"
#include "skil/scan.h"
#include "skil/skeleton_comm.h"
#include "skil/skeleton_create.h"
#include "skil/skeleton_fold.h"
#include "skil/skeleton_fuse.h"
#include "skil/skeleton_gen_mult.h"
#include "skil/skeleton_map.h"
#include "skil/stencil.h"
#include "skil/transpose.h"
