// The DPFL baseline: an immutable distributed array with functional
// skeletons.
//
// This module reproduces the comparison target of the paper's
// section 5: the same skeleton set hosted in a data-parallel
// *functional* language (DPFL [7, 8], implemented by lazy graph
// reduction on the same hardware).  Mechanism differences to Skil,
// all of which the paper names:
//
//  * skeleton arguments are closures (indirect calls), not
//    instantiated/inlined functions  -> Closure<> (src/dpfl/fn.h);
//  * values live boxed in a reduction graph: every application builds
//    thunk and box nodes and every access forces/unboxes  -> charged
//    per element;
//  * arrays are immutable: "mechanisms for local accessing and
//    manipulating data ... have to be simulated in functional
//    languages", so every map/copy/permute allocates a fresh array
//    instead of filling an existing one (fa_map *returns* its result,
//    the allocation the paper's array_map deliberately avoids).
//
// The communication structure (torus rotations, tree folds and
// broadcasts) is identical to the Skil skeletons, as it was in DPFL.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "dpfl/fn.h"
#include "parix/buffer_pool.h"
#include "parix/charge_tape.h"
#include "parix/collectives.h"
#include "parix/proc.h"
#include "skil/distribution.h"
#include "skil/index.h"

namespace skil::dpfl {

using skil::Bounds;
using skil::Distribution;
using skil::Index;
using skil::RowRun;
using skil::Size;

/// Per-element price of one lazy map application beyond the closure
/// apply itself: the fresh array cell, the suspended thunk stored in
/// it, and the force that evaluates it.  Templated over the charge
/// sink (Proc or ChargeTape) -- see fn.h.
template <class Sink>
inline void charge_map_cell(Sink& sink, std::uint64_t count = 1) {
  sink.charge(parix::Op::kAlloc, 2 * count);     // array cell box + thunk
  sink.charge(parix::Op::kIndirectCall, count);  // thunk force
}

/// Boxed arithmetic: every scalar operation on boxed values is a
/// primitive application in the reduction graph -- an indirect
/// dispatch plus a result box on top of the arithmetic itself.
/// Application kernels charge their flops through this.
template <class Sink>
inline void charge_boxed_arith(Sink& sink, std::uint64_t flops,
                               bool floating = true) {
  sink.charge(floating ? parix::Op::kFloatOp : parix::Op::kIntOp, flops);
  sink.charge(parix::Op::kIndirectCall, flops);
  sink.charge(parix::Op::kAlloc, 2 * flops);  // argument box + result box
}

/// Cost-model op kind for T (mirrors skil::op_kind).
template <class T>
constexpr parix::Op op_kind() {
  return std::is_floating_point_v<T> ? parix::Op::kFloatOp
                                     : parix::Op::kIntOp;
}

/// Immutable distributed array; copying an FArray shares the
/// partition (functional values are persistent).
template <class T>
class FArray {
 public:
  FArray() = default;
  FArray(parix::Proc& proc, std::shared_ptr<const Distribution> dist,
         std::vector<T> local)
      : proc_(&proc), dist_(std::move(dist)),
        local_(std::make_shared<const std::vector<T>>(std::move(local))) {
    // Same partition-geometry cache as skil::DistArray: locality and
    // offsets of block layouts resolve from these fields instead of
    // calling into the Distribution per element.
    my_vrank_ = dist_->topology().vrank_of(proc.id());
    dims_ = dist_->dims();
    data_ = local_->data();
    block_ = dist_->layout() == skil::Layout::kBlock;
    if (block_) {
      bounds_ = dist_->partition_bounds(my_vrank_);
      row0_ = bounds_.lower[0];
      col0_ = dims_ >= 2 ? bounds_.lower[1] : 0;
      width_ = dims_ >= 2 ? bounds_.extent(1) : 1;
    }
  }

  bool valid() const { return dist_ != nullptr; }
  parix::Proc& proc() const { return *proc_; }
  const Distribution& dist() const { return *dist_; }
  std::shared_ptr<const Distribution> dist_ptr() const { return dist_; }
  const parix::Topology& topology() const { return dist_->topology(); }
  int my_vrank() const { return my_vrank_; }
  Bounds part_bounds() const {
    if (block_) return bounds_;
    return dist_->partition_bounds(my_vrank_);
  }
  const std::vector<T>& local() const { return *local_; }
  const std::vector<RowRun>& my_runs() const {
    return dist_->local_runs(my_vrank_);
  }

  /// Boxed local element access: a selector application that forces
  /// the graph node and allocates the returned box.
  T get_elem(const Index& ix) const {
    if (block_ && bounds_.contains(ix, dims_)) [[likely]] {
      charge_get_elem();
      const int col = dims_ >= 2 ? ix[1] : 0;
      return data_[static_cast<std::size_t>(
          static_cast<long>(ix[0] - row0_) * width_ + (col - col0_))];
    }
    SKIL_REQUIRE(dist_->owner_vrank(ix) == my_vrank_,
                 "fa_get_elem: element is not local");
    charge_get_elem();
    return (*local_)[dist_->local_offset(my_vrank_, ix)];
  }

  /// The raw read of get_elem with no charges: tape-specialized loops
  /// read through this and account through a replayed tape that
  /// append_get_elem_charges contributed to.
  T get_elem_uncharged(const Index& ix) const {
    if (block_ && bounds_.contains(ix, dims_)) [[likely]] {
      const int col = dims_ >= 2 ? ix[1] : 0;
      return data_[static_cast<std::size_t>(
          static_cast<long>(ix[0] - row0_) * width_ + (col - col0_))];
    }
    SKIL_REQUIRE(dist_->owner_vrank(ix) == my_vrank_,
                 "fa_get_elem: element is not local");
    return (*local_)[dist_->local_offset(my_vrank_, ix)];
  }

  /// Appends the exact charge sequence of one get_elem to `sink`
  /// (the single source of truth: the interpretive path charges
  /// through this with sink = Proc).
  template <class Sink>
  static void append_get_elem_charges(Sink& sink) {
    sink.charge(op_kind<T>());
    sink.charge(parix::Op::kIndirectCall);
    sink.charge(parix::Op::kAlloc);
    charge_unbox(sink);
  }

  /// Mutable access to the partition storage when this FArray is its
  /// *sole* owner -- nullptr whenever the partition is shared.  The
  /// fused update paths (DESIGN.md section 13) use this to implement
  /// the persistent-update optimisation: a region map over a uniquely
  /// owned array may overwrite the region in place, because no other
  /// functional value can ever observe the old cells.  The vector was
  /// created mutable (the constructor's make_shared) and only typed
  /// const for sharing, so the const_cast does not touch an object
  /// defined const.
  std::vector<T>* mutable_local_if_unique() {
    if (local_ == nullptr || local_.use_count() != 1) return nullptr;
    return const_cast<std::vector<T>*>(local_.get());
  }

 private:
  void charge_get_elem() const { append_get_elem_charges(*proc_); }

  parix::Proc* proc_ = nullptr;
  std::shared_ptr<const Distribution> dist_;
  std::shared_ptr<const std::vector<T>> local_;
  // Cached partition geometry (see the constructor).  data_ aliases
  // local_->data(): the vector is immutable for the FArray's lifetime,
  // and the raw pointer spares get_elem two dependent loads.
  const T* data_ = nullptr;
  Bounds bounds_;
  int my_vrank_ = 0;
  int dims_ = 1;
  int row0_ = 0;
  int col0_ = 0;
  int width_ = 1;
  bool block_ = false;
};

/// Creates a block-distributed functional array.  `blocksize`
/// components of zero request the topology-derived default.
template <class T>
FArray<T> fa_create(parix::Proc& proc, int dim, Size size,
                    const Closure<T(Index)>& init_elem,
                    parix::Distr distr = parix::Distr::kDefault,
                    Size blocksize = Size{0, 0}) {
  auto topo = std::make_shared<const parix::Topology>(proc.machine(), distr);
  auto dist = std::make_shared<const Distribution>(
      Distribution::block(std::move(topo), dim, size, blocksize));
  const parix::TraceSpan span(proc, "fa_create");
  const int vrank = dist->topology().vrank_of(proc.id());
  std::vector<T> local(static_cast<std::size_t>(dist->local_count(vrank)));
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  for (const RowRun& run : dist->local_runs(vrank))
    for (int c = 0; c < run.col_count; ++c) {
      local[offset++] =
          init_elem.apply_uncharged(Index{run.row, run.col_begin + c});
      ++elems;
    }
  charge_apply(proc, elems);
  charge_map_cell(proc, elems);
  proc.charge(op_kind<T>(), elems);
  return FArray<T>(proc, std::move(dist), std::move(local));
}

/// Functional map: *returns a fresh array* (immutability forbids the
/// in-place fill Skil's array_map performs).
template <class T2, class T1>
FArray<T2> fa_map(const Closure<T2(T1, Index)>& map_f, const FArray<T1>& a) {
  SKIL_REQUIRE(a.valid(), "fa_map: invalid array");
  parix::Proc& proc = a.proc();
  const parix::TraceSpan span(proc, "fa_map");
  const auto& src = a.local();
  // reserve + push_back: every element is written exactly once, so the
  // value-initialising vector(n) constructor would zero megabytes per
  // step for nothing.
  std::vector<T2> fresh;
  fresh.reserve(src.size());
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  for (const RowRun& run : a.my_runs())
    for (int c = 0; c < run.col_count; ++c) {
      fresh.push_back(map_f.apply_uncharged(
          src[offset], Index{run.row, run.col_begin + c}));
      ++offset;
      ++elems;
    }
  charge_apply(proc, elems);
  charge_map_cell(proc, elems);
  proc.charge(op_kind<T2>(), elems);
  return FArray<T2>(proc, a.dist_ptr(), std::move(fresh));
}

/// Tape-specialized fa_map.  `map_f` is a plain (inlinable) functor
/// `T2(const T1&, Index, std::uint64_t& tapped)` that performs raw
/// reads (get_elem_uncharged) and bumps `tapped` once per element
/// whose interpretive body would have charged `tape`'s sequence; the
/// loop then replays the tape `tapped` times before booking the same
/// bulk tail charges as fa_map.  Chain-identical to fa_map with a
/// closure whose active elements all charge `tape`'s sequence
/// (DESIGN.md section 8).
///
/// As with array_map_taped, hoist the tape out of repeated-map loops:
/// its stable identity keys the cross-replay settlement memo
/// (DESIGN.md section 12), turning every replay after the first into
/// a cached closed-form walk.  gauss_dpfl's elimination tapes are the
/// canonical example -- built once, replayed every step.
template <class T1, class MapF>
auto fa_map_taped(MapF&& map_f, const parix::ChargeTape& tape,
                  const FArray<T1>& a) {
  using T2 = std::remove_cvref_t<
      std::invoke_result_t<MapF&, const T1&, Index, std::uint64_t&>>;
  SKIL_REQUIRE(a.valid(), "fa_map: invalid array");
  parix::Proc& proc = a.proc();
  const parix::TraceSpan span(proc, "fa_map");
  const auto& src = a.local();
  std::vector<T2> fresh;
  fresh.reserve(src.size());
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  std::uint64_t tapped = 0;
  for (const RowRun& run : a.my_runs())
    for (int c = 0; c < run.col_count; ++c) {
      fresh.push_back(
          map_f(src[offset], Index{run.row, run.col_begin + c}, tapped));
      ++offset;
      ++elems;
    }
  proc.replay(tape, tapped);
  // Tail charges ride the deferred ledger too: booking them eagerly
  // would settle the just-deferred replay on the spot and collapse the
  // gang-settlement window to nothing.
  parix::DeferredCharges deferred(proc);
  charge_apply(deferred, elems);
  charge_map_cell(deferred, elems);
  deferred.charge(op_kind<T2>(), elems);
  return FArray<T2>(proc, a.dist_ptr(), std::move(fresh));
}

/// Functional fold: conversion + local fold + tree fold + broadcast.
template <class T2, class T1>
T2 fa_fold(const Closure<T2(T1, Index)>& conv_f,
           const Closure<T2(T2, T2)>& fold_f, const FArray<T1>& a) {
  SKIL_REQUIRE(a.valid(), "fa_fold: invalid array");
  parix::Proc& proc = a.proc();
  const parix::TraceSpan span(proc, "fa_fold");
  const auto& src = a.local();
  std::optional<T2> acc;
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  for (const RowRun& run : a.my_runs())
    for (int c = 0; c < run.col_count; ++c) {
      T2 converted = conv_f.apply_uncharged(
          src[offset], Index{run.row, run.col_begin + c});
      acc = acc.has_value()
                ? fold_f.apply_uncharged(std::move(*acc), std::move(converted))
                : std::move(converted);
      ++offset;
      ++elems;
    }
  charge_apply(proc, 2 * elems);
  charge_map_cell(proc, elems);
  proc.charge(op_kind<T1>(), elems);

  auto merge = [&](std::optional<T2> lhs,
                   std::optional<T2> rhs) -> std::optional<T2> {
    if (!lhs.has_value()) return rhs;
    if (!rhs.has_value()) return lhs;
    charge_apply(proc);
    return fold_f.apply_uncharged(std::move(*lhs), std::move(*rhs));
  };
  std::optional<T2> result =
      parix::allreduce(proc, a.topology(), std::move(acc), merge);
  SKIL_REQUIRE(result.has_value(), "fa_fold: array has no elements");
  return *result;
}

/// Tape-specialized fa_fold.  `conv_f` is a raw (inlinable) functor
/// `T2(const T1&, Index, std::uint64_t& tapped)` bumping `tapped` once
/// per application whose interpretive body would have charged `tape`'s
/// sequence; `fold_f` is a raw charge-free combiner `T2(T2, T2)`.  The
/// local loop replays the tape before booking fa_fold's bulk tail
/// charges; the (cold, log p) tree merge stays interpretive, charging
/// exactly what fa_fold's merge charges.
template <class T1, class ConvF, class FoldF>
auto fa_fold_taped(ConvF&& conv_f, FoldF&& fold_f,
                   const parix::ChargeTape& tape, const FArray<T1>& a) {
  using T2 = std::remove_cvref_t<
      std::invoke_result_t<ConvF&, const T1&, Index, std::uint64_t&>>;
  SKIL_REQUIRE(a.valid(), "fa_fold: invalid array");
  parix::Proc& proc = a.proc();
  const parix::TraceSpan span(proc, "fa_fold");
  const auto& src = a.local();
  std::optional<T2> acc;
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  std::uint64_t tapped = 0;
  for (const RowRun& run : a.my_runs())
    for (int c = 0; c < run.col_count; ++c) {
      T2 converted =
          conv_f(src[offset], Index{run.row, run.col_begin + c}, tapped);
      acc = acc.has_value()
                ? fold_f(std::move(*acc), std::move(converted))
                : std::move(converted);
      ++offset;
      ++elems;
    }
  proc.replay(tape, tapped);
  parix::DeferredCharges deferred(proc);
  charge_apply(deferred, 2 * elems);
  charge_map_cell(deferred, elems);
  deferred.charge(op_kind<T1>(), elems);

  // The (cold, log p) tree merge stays eager: its first charge_apply
  // is the fold-combine settlement point, and the allreduce sends
  // settle anyway.
  auto merge = [&](std::optional<T2> lhs,
                   std::optional<T2> rhs) -> std::optional<T2> {
    if (!lhs.has_value()) return rhs;
    if (!rhs.has_value()) return lhs;
    charge_apply(proc);
    return fold_f(std::move(*lhs), std::move(*rhs));
  };
  std::optional<T2> result =
      parix::allreduce(proc, a.topology(), std::move(acc), merge);
  SKIL_REQUIRE(result.has_value(), "fa_fold: array has no elements");
  return *result;
}

/// Functional broadcast-partition: a fresh array whose every partition
/// is the one containing `ix`.
template <class T>
FArray<T> fa_broadcast_part(const FArray<T>& a, Index ix) {
  SKIL_REQUIRE(a.valid(), "fa_broadcast_part: invalid array");
  SKIL_REQUIRE(a.dist().uniform_partitions(),
               "fa_broadcast_part: partitions must have equal size");
  parix::Proc& proc = a.proc();
  const parix::TraceSpan span(proc, "fa_broadcast_part");
  const int root_hw = a.dist().owner_hw(ix);
  std::vector<T> part;
  if (proc.id() == root_hw) part = a.local();
  parix::broadcast(proc, a.topology(), root_hw, part);
  const std::uint64_t cells = part.size();
  proc.charge(parix::Op::kAlloc, cells);  // fresh boxed cells
  proc.charge(parix::Op::kCopyWord,
              cells * sizeof(T) / sizeof(long) + 1);
  return FArray<T>(proc, a.dist_ptr(), std::move(part));
}

/// Functional row permutation: returns the permuted array.  Same
/// message pattern as the Skil skeleton.
template <class T>
FArray<T> fa_permute_rows(const FArray<T>& a,
                          const Closure<int(int)>& perm_f) {
  SKIL_REQUIRE(a.valid(), "fa_permute_rows: invalid array");
  SKIL_REQUIRE(a.dist().dims() == 2 &&
                   a.dist().layout() == skil::Layout::kBlock,
               "fa_permute_rows needs a 2-D block-distributed array");
  parix::Proc& proc = a.proc();
  const parix::TraceSpan span(proc, "fa_permute_rows");
  const Distribution& dist = a.dist();
  const parix::Topology& topo = a.topology();
  const int n = dist.global_rows();
  const int p = topo.nprocs();
  const int my_vrank = a.my_vrank();

  std::vector<int> inverse(n, -1);
  for (int row = 0; row < n; ++row) {
    const int target = perm_f.apply_uncharged(row);
    SKIL_REQUIRE(target >= 0 && target < n && inverse[target] < 0,
                 "fa_permute_rows: perm_f is not a bijection");
    inverse[target] = row;
  }
  charge_apply(proc, static_cast<std::uint64_t>(n));

  const long tag = proc.fresh_tag();
  const auto& src = a.local();
  std::vector<T> fresh(src.size());

  struct Batch {
    std::vector<int> rows;
    std::vector<T> data;
  };
  std::vector<Batch> outgoing(p);
  std::size_t offset = 0;
  for (const RowRun& run : a.my_runs()) {
    const int target = perm_f.apply_uncharged(run.row);
    const int dest = dist.owner_vrank(Index{target, run.col_begin});
    outgoing[dest].rows.push_back(target);
    outgoing[dest].data.insert(outgoing[dest].data.end(),
                               src.begin() + offset,
                               src.begin() + offset + run.col_count);
    offset += run.col_count;
  }
  charge_apply(proc, a.my_runs().size());

  const Bounds bounds = a.part_bounds();
  const int width = bounds.extent(1);
  auto deposit = [&](const Batch& batch) {
    std::size_t data_offset = 0;
    for (int row : batch.rows) {
      const long at = dist.local_offset(my_vrank, Index{row, bounds.lower[1]});
      std::copy(batch.data.begin() + data_offset,
                batch.data.begin() + data_offset + width, fresh.begin() + at);
      data_offset += width;
    }
  };

  for (int dest = 0; dest < p; ++dest) {
    if (dest == my_vrank || outgoing[dest].rows.empty()) continue;
    proc.send<std::vector<int>>(topo.hw_of(dest), tag, outgoing[dest].rows);
    proc.send<std::vector<T>>(topo.hw_of(dest), tag + 1,
                              std::move(outgoing[dest].data));
  }
  deposit(outgoing[my_vrank]);
  std::vector<bool> expecting(p, false);
  for (int row = bounds.lower[0]; row < bounds.upper[0]; ++row) {
    const int source =
        dist.owner_vrank(Index{inverse[row], bounds.lower[1]});
    if (source != my_vrank) expecting[source] = true;
  }
  for (int source = 0; source < p; ++source) {
    if (!expecting[source]) continue;
    Batch batch;
    batch.rows = proc.recv<std::vector<int>>(topo.hw_of(source), tag);
    batch.data = proc.recv<std::vector<T>>(topo.hw_of(source), tag + 1);
    deposit(batch);
  }
  proc.charge(parix::Op::kAlloc, fresh.size());
  proc.charge(parix::Op::kCopyWord, fresh.size() * sizeof(T) / sizeof(long));
  return FArray<T>(proc, a.dist_ptr(), std::move(fresh));
}

namespace detail {

/// Shared core of fa_gen_mult and fa_gen_mult_taped, templated over
/// the combine functors.  The charges are already bulk (per round, not
/// per element), so both paths book the identical sequence; the taped
/// entry point only swaps the per-element closure dispatch for fully
/// inlined functors.
template <class T, class AddF, class MultF>
FArray<T> fa_gen_mult_impl(const FArray<T>& a, const FArray<T>& b,
                           AddF&& gen_add, MultF&& gen_mult) {
  SKIL_REQUIRE(a.valid() && b.valid(), "fa_gen_mult: invalid array");
  const Distribution& dist = a.dist();
  const parix::Topology& topo = a.topology();
  SKIL_REQUIRE(topo.kind() == parix::Distr::kTorus2D &&
                   topo.grid_rows() == topo.grid_cols(),
               "fa_gen_mult needs a square DISTR_TORUS2D grid");
  const int n = dist.global_rows();
  const int q = topo.grid_rows();
  SKIL_REQUIRE(n % q == 0, "fa_gen_mult: q must divide n");
  const int block = n / q;
  parix::Proc& proc = a.proc();
  const parix::TraceSpan span(proc, "fa_gen_mult");
  const int my_row = topo.grid_row(proc.id());
  const int my_col = topo.grid_col(proc.id());

  auto rotate = [&](std::vector<T> payload, int drow, int dcol) {
    const long tag = proc.fresh_tag();
    const int dst = topo.at_grid(topo.grid_row(proc.id()) + drow,
                                 topo.grid_col(proc.id()) + dcol);
    const int src = topo.at_grid(topo.grid_row(proc.id()) - drow,
                                 topo.grid_col(proc.id()) - dcol);
    if (dst == proc.id()) return payload;
    proc.send<std::vector<T>>(dst, tag, std::move(payload));
    return proc.recv<std::vector<T>>(src, tag);
  };

  // Rotation payloads travel as shared zero-copy buffers: a round's
  // send references the same block the multiply loop reads, so the
  // host no longer copies q blocks per processor.  The process-wide
  // pool recycles the vector nodes once the receiving side has
  // drained them, and keeps them warm across sweep cells.
  parix::BufferPool<T>& pool = parix::process_buffer_pool<T>();
  std::shared_ptr<const std::vector<T>> a_buf =
      pool.share(rotate(a.local(), 0, -my_row));
  std::shared_ptr<const std::vector<T>> b_buf =
      pool.share(rotate(b.local(), -my_col, 0));

  const int a_dst = topo.torus_neighbor(proc.id(), 0, -1);
  const int a_src = topo.torus_neighbor(proc.id(), 0, +1);
  const int b_dst = topo.torus_neighbor(proc.id(), -1, 0);
  const int b_src = topo.torus_neighbor(proc.id(), +1, 0);
  const bool rotating = a_dst != proc.id() || b_dst != proc.id();

  // Column tile sized to keep the walked c/b rows resident in cache
  // across the k loop.  Per (i, j) cell the k order is unchanged, so
  // every boxed combine sequence -- and thus every FP rounding -- is
  // identical to the untiled loop.
  constexpr int kTileCols = 64;

  std::vector<T> c_block(static_cast<std::size_t>(block) * block);
  for (int round = 0; round < q; ++round) {
    const parix::TraceSpan round_span(proc, "gen_mult round", round);
    // The DPFL skeleton uses the same asynchronous overlap as Skil's
    // (both run on the same Parix communication layer).
    const long tag = proc.fresh_tag();
    if (rotating) {
      proc.send_buffer<T>(a_dst, tag, a_buf, parix::SendMode::kAsync);
      proc.send_buffer<T>(b_dst, tag + 1, b_buf, parix::SendMode::kAsync);
    }
    const std::vector<T>& a_block = *a_buf;
    const std::vector<T>& b_block = *b_buf;
    for (int j0 = 0; j0 < block; j0 += kTileCols) {
      const int j1 = std::min(j0 + kTileCols, block);
      for (int i = 0; i < block; ++i) {
        T* crow = &c_block[static_cast<std::size_t>(i) * block];
        for (int k = 0; k < block; ++k) {
          const T& aik = a_block[static_cast<std::size_t>(i) * block + k];
          const T* brow = &b_block[static_cast<std::size_t>(k) * block];
          if (round == 0 && k == 0) {
            for (int j = j0; j < j1; ++j) crow[j] = gen_mult(aik, brow[j]);
          } else {
            for (int j = j0; j < j1; ++j)
              crow[j] = gen_add(crow[j], gen_mult(aik, brow[j]));
          }
        }
      }
    }
    const std::uint64_t fused = static_cast<std::uint64_t>(block) * block *
                                block;
    charge_apply(proc, 2 * fused);
    proc.charge(op_kind<T>(), 2 * fused);
    // Persistent accumulation: the round's result array is a fresh
    // structure in the reduction graph.  Under fusion the q-round
    // chain deforests -- every intermediate round result provably has
    // no other observer, so only the first round's structure is built
    // (which is what the host loop above does anyway) and the q-1
    // rebuild allocations disappear from the chain (DESIGN.md
    // section 13).
    if (round == 0 || !proc.fusing())
      proc.charge(parix::Op::kAlloc, c_block.size());
    if (rotating) {
      a_buf = pool.share(proc.recv<std::vector<T>>(a_src, tag));
      b_buf = pool.share(proc.recv<std::vector<T>>(b_src, tag + 1));
    }
  }

  if (proc.fusing())
    parix::note_fusion_fused(/*barriers=*/0,
                             /*tapes=*/static_cast<std::uint64_t>(q - 1));
  else if (proc.fuse_mode() == parix::FuseMode::kOn)
    parix::note_fusion_rejected(parix::FusionReject::kPath);

  return FArray<T>(proc, a.dist_ptr(), std::move(c_block));
}

}  // namespace detail

/// Functional Gentleman multiplication: same torus rotations as the
/// Skil skeleton, but every round combines through closures on boxed
/// values and the accumulator array is rebuilt persistently per round.
template <class T>
FArray<T> fa_gen_mult(const FArray<T>& a, const FArray<T>& b,
                      const Closure<T(T, T)>& gen_add,
                      const Closure<T(T, T)>& gen_mult) {
  return detail::fa_gen_mult_impl(
      a, b,
      [&](T x, T y) { return gen_add.apply_uncharged(x, y); },
      [&](T x, T y) { return gen_mult.apply_uncharged(x, y); });
}

/// Tape-path fa_gen_mult: the same rounds and the same bulk charges,
/// with the combines supplied as plain functors that inline into the
/// block-multiply loop (callers still construct their Closures so the
/// closure-record allocations charge identically).
template <class T, class AddF, class MultF>
FArray<T> fa_gen_mult_taped(const FArray<T>& a, const FArray<T>& b,
                            AddF&& gen_add, MultF&& gen_mult) {
  return detail::fa_gen_mult_impl(a, b, std::forward<AddF>(gen_add),
                                  std::forward<MultF>(gen_mult));
}

namespace detail {

template <class T>
std::vector<T> fa_assemble(const Distribution& dist,
                           const std::vector<std::vector<T>>& parts) {
  std::vector<T> global(static_cast<std::size_t>(dist.global_rows()) *
                        dist.global_cols());
  for (int vrank = 0; vrank < dist.nprocs(); ++vrank) {
    std::size_t offset = 0;
    for (const RowRun& run : dist.local_runs(vrank)) {
      const std::size_t base =
          static_cast<std::size_t>(run.row) * dist.global_cols() +
          run.col_begin;
      for (int c = 0; c < run.col_count; ++c)
        global[base + c] = parts[vrank][offset++];
    }
  }
  return global;
}

}  // namespace detail

/// Gathers the global contents on processor 0 (result extraction).
template <class T>
std::vector<T> fa_gather_root(const FArray<T>& a) {
  SKIL_REQUIRE(a.valid(), "fa_gather_root: invalid array");
  parix::Proc& proc = a.proc();
  const parix::TraceSpan span(proc, "fa_gather_root");
  std::vector<std::vector<T>> parts =
      parix::gather(proc, a.topology(), /*root_hw=*/0, a.local());
  if (proc.id() != 0) return {};
  return detail::fa_assemble(a.dist(), parts);
}

/// Gathers the global contents on every processor.
template <class T>
std::vector<T> fa_gather_all(const FArray<T>& a) {
  SKIL_REQUIRE(a.valid(), "fa_gather_all: invalid array");
  parix::Proc& proc = a.proc();
  const parix::TraceSpan span(proc, "fa_gather_all");
  std::vector<std::vector<T>> parts =
      parix::allgather(proc, a.topology(), a.local());
  return detail::fa_assemble(a.dist(), parts);
}

}  // namespace skil::dpfl
