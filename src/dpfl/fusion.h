// Lazy skeleton composition for the DPFL baseline (DESIGN.md
// section 13).
//
// The functional flavour of skil/skeleton_fuse.h: single-argument
// overloads of fa_map / fa_fold return *stage* objects instead of
// running, operator| chains them, and fa_force decides at the last
// moment:
//
//   fa_force(fa_map(f) | fa_map(g), a)        -- map composition
//   fa_force(fa_map(f) | fa_fold(conv, op), a) -- fold of a mapped array
//
// Under Proc::fusing() false (SKIL_FUSE=off or the interpretive
// charge path) the pipeline executes literally as today's nested
// calls -- each stage allocates its fresh array and books its own
// charges, bit-identical to hand-written composition.  Under fusing()
// the pipeline runs as one pass with one charge tail and no
// intermediate array: in DPFL terms, deforestation -- the intermediate
// functional value provably has no other observer, so it is never
// built.  Results are bit-identical (same per-element composition,
// same fold order); virtual times are lower because the eliminated
// stage's boxing, closure dispatch and allocation charges are the
// very costs the paper's DPFL comparison laments.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "dpfl/farray.h"
#include "dpfl/fn.h"
#include "parix/charge_tape.h"
#include "parix/collectives.h"
#include "parix/proc.h"

namespace skil::dpfl {

// --- stages ----------------------------------------------------------------

template <class T2, class T1>
struct FaMapStage {
  Closure<T2(T1, Index)> f;
};

/// Single-argument fa_map: a lazy stage (the two-argument overload in
/// farray.h runs eagerly, as always).
template <class T2, class T1>
FaMapStage<T2, T1> fa_map(Closure<T2(T1, Index)> f) {
  return {std::move(f)};
}

template <class R, class T>
struct FaFoldStage {
  Closure<R(T, Index)> conv;
  Closure<R(R, R)> fold;
};

/// Two-argument fa_fold: a lazy stage (the three-argument overload in
/// farray.h runs eagerly).
template <class R, class T>
FaFoldStage<R, T> fa_fold(Closure<R(T, Index)> conv, Closure<R(R, R)> fold) {
  return {std::move(conv), std::move(fold)};
}

// --- pipelines -------------------------------------------------------------

template <class T3, class T2, class T1>
struct FaMapMapExpr {
  Closure<T2(T1, Index)> f;
  Closure<T3(T2, Index)> g;
};
template <class T3, class T2, class T1>
FaMapMapExpr<T3, T2, T1> operator|(FaMapStage<T2, T1> a,
                                   FaMapStage<T3, T2> b) {
  return {std::move(a.f), std::move(b.f)};
}

template <class R, class T2, class T1>
struct FaMapFoldExpr {
  Closure<T2(T1, Index)> f;
  Closure<R(T2, Index)> conv;
  Closure<R(R, R)> fold;
};
template <class R, class T2, class T1>
FaMapFoldExpr<R, T2, T1> operator|(FaMapStage<T2, T1> a,
                                   FaFoldStage<R, T2> b) {
  return {std::move(a.f), std::move(b.conv), std::move(b.fold)};
}

// --- forcing ---------------------------------------------------------------

/// Forces a map|map pipeline.  Unfused: two fa_map passes with the
/// intermediate array materialized.  Fused: one pass, one charge
/// tail, no intermediate -- g(f(x)) per element in the same order.
template <class T3, class T2, class T1>
FArray<T3> fa_force(const FaMapMapExpr<T3, T2, T1>& expr,
                    const FArray<T1>& a) {
  SKIL_REQUIRE(a.valid(), "fa_force: invalid array");
  parix::Proc& proc = a.proc();
  if (!proc.fusing()) {
    if (proc.fuse_mode() == parix::FuseMode::kOn)
      parix::note_fusion_rejected(parix::FusionReject::kPath);
    return fa_map(expr.g, fa_map(expr.f, a));
  }
  const parix::TraceSpan span(proc, "fused_fa_map");
  const auto& src = a.local();
  std::vector<T3> fresh;
  fresh.reserve(src.size());
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  for (const RowRun& run : a.my_runs())
    for (int c = 0; c < run.col_count; ++c) {
      const Index ix{run.row, run.col_begin + c};
      fresh.push_back(
          expr.g.apply_uncharged(expr.f.apply_uncharged(src[offset], ix), ix));
      ++offset;
      ++elems;
    }
  charge_apply(proc, elems);
  charge_map_cell(proc, elems);
  proc.charge(op_kind<T3>(), elems);
  parix::note_fusion_fused(/*barriers=*/0, /*tapes=*/1);
  return FArray<T3>(proc, a.dist_ptr(), std::move(fresh));
}

/// Forces a map|fold pipeline.  Unfused: fa_map materializes the
/// intermediate, fa_fold folds it.  Fused: one fold pass converting
/// through the composed stage -- same combine order, bit-identical
/// result, and the map stage's whole charge tail plus its fresh-array
/// allocation disappear.
template <class R, class T2, class T1>
R fa_force(const FaMapFoldExpr<R, T2, T1>& expr, const FArray<T1>& a) {
  SKIL_REQUIRE(a.valid(), "fa_force: invalid array");
  parix::Proc& proc = a.proc();
  if (!proc.fusing()) {
    if (proc.fuse_mode() == parix::FuseMode::kOn)
      parix::note_fusion_rejected(parix::FusionReject::kPath);
    return fa_fold(expr.conv, expr.fold, fa_map(expr.f, a));
  }
  const parix::TraceSpan span(proc, "fused_fa_fold");
  const auto& src = a.local();
  std::optional<R> acc;
  std::size_t offset = 0;
  std::uint64_t elems = 0;
  for (const RowRun& run : a.my_runs())
    for (int c = 0; c < run.col_count; ++c) {
      const Index ix{run.row, run.col_begin + c};
      R converted = expr.conv.apply_uncharged(
          expr.f.apply_uncharged(src[offset], ix), ix);
      acc = acc.has_value()
                ? expr.fold.apply_uncharged(std::move(*acc),
                                            std::move(converted))
                : std::move(converted);
      ++offset;
      ++elems;
    }
  charge_apply(proc, 2 * elems);
  charge_map_cell(proc, elems);
  proc.charge(op_kind<T1>(), elems);

  auto merge = [&](std::optional<R> lhs,
                   std::optional<R> rhs) -> std::optional<R> {
    if (!lhs.has_value()) return rhs;
    if (!rhs.has_value()) return lhs;
    charge_apply(proc);
    return expr.fold.apply_uncharged(std::move(*lhs), std::move(*rhs));
  };
  std::optional<R> result =
      parix::allreduce(proc, a.topology(), std::move(acc), merge);
  SKIL_REQUIRE(result.has_value(), "fa_force: array has no elements");
  parix::note_fusion_fused(/*barriers=*/0, /*tapes=*/1);
  return *result;
}

}  // namespace skil::dpfl
