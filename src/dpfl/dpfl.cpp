#include "dpfl/dpfl.h"

namespace skil::dpfl {

const char* baseline_name() {
  return "DPFL (data-parallel functional language, lazy graph reduction)";
}

}  // namespace skil::dpfl
