// Umbrella header for the DPFL functional-language baseline.
#pragma once

#include "dpfl/farray.h"
#include "dpfl/fn.h"
#include "dpfl/fusion.h"

namespace skil::dpfl {

/// Human-readable identification of the baseline.
const char* baseline_name();

}  // namespace skil::dpfl
