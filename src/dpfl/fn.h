// Closure-based functional values for the DPFL baseline.
//
// DPFL (Kuchen, Plasmeijer, Stoltze: "Efficient Distributed Memory
// Implementation of a Data Parallel Functional Language", PARLE '94)
// is the functional skeleton language the paper compares against.  Its
// implementation executes skeletons by lazy graph reduction: functional
// arguments are closures, every application builds graph nodes, and
// values are boxed on the heap.  This module models those mechanisms:
// Closure<R(Args...)> really dispatches through std::function (an
// indirect call on the host), and its invocation charges the cost-model
// prices of a graph-reduction application -- thunk construction, boxed
// result allocation and the indirect jump -- which the Skil compiler's
// instantiation procedure eliminates (paper section 2.4).
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

#include "parix/charge_tape.h"
#include "parix/proc.h"

namespace skil::dpfl {

// The charge helpers are templated over a charge Sink -- parix::Proc
// (the interpretive path charges the clock directly) or
// parix::ChargeTape (the tape path records the identical sequence once
// and replays it).  One definition serves both, so the sequences
// cannot drift apart.

/// Virtual-time prices of one closure application in a lazy
/// graph-reduction runtime: the indirect call itself plus the thunk
/// node and the boxed result cell it allocates.
template <class Sink>
inline void charge_apply(Sink& sink, std::uint64_t count = 1) {
  sink.charge(parix::Op::kIndirectCall, count);
  sink.charge(parix::Op::kAlloc, count);  // application node in the graph
}

/// Price of reading a boxed value out of the graph (pointer chase).
template <class Sink>
inline void charge_unbox(Sink& sink, std::uint64_t count = 1) {
  sink.charge(parix::Op::kCopyWord, 2 * count);
}

/// A first-class function value.  Building one allocates a closure
/// record (charged); calling it is an indirect, boxing application.
template <class Sig>
class Closure;

template <class R, class... Args>
class Closure<R(Args...)> {
 public:
  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Closure>)
  Closure(parix::Proc& proc, F&& f) : proc_(&proc) {
    // Hand-rolled type erasure instead of std::function: skeleton
    // inner loops call apply_uncharged once per element, and this
    // keeps each application a single indirect call through a plain
    // function pointer (the *modeled* dispatch cost is charged
    // separately; the host-side dispatch should cost as little as
    // possible).
    using Fn = std::remove_cvref_t<F>;
    auto owned = std::make_shared<Fn>(std::forward<F>(f));
    target_ = owned.get();
    owner_ = std::move(owned);
    // Arguments cross the erasure boundary by value, not by reference:
    // the skeletons apply closures to scalars and small Index tuples,
    // which then travel in registers instead of being spilled to the
    // stack for an rvalue-reference to point at.
    invoke_ = [](const void* target, Args... args) -> R {
      return (*static_cast<const Fn*>(target))(std::move(args)...);
    };
    proc.charge(parix::Op::kAlloc);  // closure record
  }

  R operator()(Args... args) const {
    charge_apply(*proc_);
    return invoke_(target_, std::forward<Args>(args)...);
  }

  /// Invokes without the per-call charge (callers that bulk-charge a
  /// whole loop use this to keep host overhead low).
  R apply_uncharged(Args... args) const {
    return invoke_(target_, std::forward<Args>(args)...);
  }

  parix::Proc& proc() const { return *proc_; }

 private:
  parix::Proc* proc_;
  std::shared_ptr<const void> owner_;
  const void* target_ = nullptr;
  R (*invoke_)(const void*, Args...) = nullptr;
};

}  // namespace skil::dpfl
