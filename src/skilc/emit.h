// C code emission for (instantiated) Skil programs.
//
// The Skil compiler "translates all functional features and inserts
// the parallel code ... into the application program, which can then
// be processed by a C compiler used as a back-end" (paper section
// 2.4).  This emitter renders the first-order, monomorphic program the
// instantiation pass produces as C-like text.  Instantiated pardata
// types print with mangled names, exactly as the paper shows:
// "floatarray and intarray stand for the implementations of
// array <float> and array <int>".
#pragma once

#include <string>

#include "skilc/ast.h"

namespace skil::skilc {

/// Mangled C name of a monomorphic type (array <float> -> floatarray).
std::string mangle_type(const TypePtr& type);

/// Renders one expression / a whole program as C-like source.  With
/// `mangle` false, declared types keep the Skil spelling
/// (`array <float>` rather than `floatarray`), which keeps the output
/// inside the Skil language itself (used by the round-trip tests).
std::string emit_expr(const Expr& expr);
std::string emit_program(const Program& program, bool mangle = true);

}  // namespace skil::skilc
