// Polymorphic type checking (paper section 2.2).
//
// "Our approach leads however to safer programs, as a polymorphic type
// checking is performed."  The checker infers a type for every
// expression by unification: polymorphic functions are freshened per
// use, partial applications receive the remaining-parameter function
// type (currying, section 2.1), operator sections get polymorphic
// operator types, and the pardata restriction (no pardata types as
// components of other types) is enforced inside unification.
#pragma once

#include <string>

#include "skilc/ast.h"
#include "support/error.h"

namespace skil::skilc {

/// A Skil type error, carrying a source line when known.
class TypeError : public support::Error {
 public:
  explicit TypeError(const std::string& what) : support::Error(what) {}
};

/// Annotates every expression in the program with its type.
/// Throws TypeError on ill-typed programs.
void typecheck(Program& program);

}  // namespace skil::skilc
