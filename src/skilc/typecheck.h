// Polymorphic type checking (paper section 2.2).
//
// "Our approach leads however to safer programs, as a polymorphic type
// checking is performed."  The checker infers a type for every
// expression by unification: polymorphic functions are freshened per
// use, partial applications receive the remaining-parameter function
// type (currying, section 2.1), operator sections get polymorphic
// operator types, and the pardata restriction (no pardata types as
// components of other types) is enforced inside unification.
#pragma once

#include <string>

#include "skilc/ast.h"
#include "skilc/diagnostics.h"
#include "support/error.h"

namespace skil::skilc {

/// A Skil type error, carrying a source span when known.  `bare()` is
/// the message without the "skil type error: line L:C:" prefix, for
/// embedding into structured diagnostics that render their own span.
class TypeError : public support::Error {
 public:
  explicit TypeError(const std::string& what) : support::Error(what) {}
  TypeError(const std::string& what, int line, int column)
      : support::Error(what, line, column) {}
  TypeError(const std::string& what, std::string bare, int line, int column)
      : support::Error(what, line, column), bare_(std::move(bare)) {}

  const std::string& bare() const { return bare_; }

 private:
  std::string bare_;
};

/// Annotates every expression in the program with its type.
/// Throws TypeError on ill-typed programs.
void typecheck(Program& program);

/// Collecting variant: checks every function, recording one
/// error-level Diagnostic (pass "type") per failing function into
/// `sink` instead of stopping at the first ill-typed one.  Functions
/// that check cleanly are fully annotated as with typecheck().
/// Returns true when no type error was found.
bool typecheck_collect(Program& program, DiagnosticSink& sink);

}  // namespace skil::skilc
