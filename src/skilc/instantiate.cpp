#include "skilc/instantiate.h"

#include <map>
#include <sstream>

#include "skilc/typecheck.h"

namespace skil::skilc {

namespace {

/// Description of a functional argument at a call site: the underlying
/// target (a named first-order function or an operator section) plus
/// the value arguments bound by partial application.
struct FnDesc {
  bool is_section = false;
  std::string name;              ///< function name or operator spelling
  std::vector<ExprPtr> bound;    ///< lifted value arguments (owned clones)
  std::vector<TypePtr> bound_types;

  FnDesc clone() const {
    FnDesc copy;
    copy.is_section = is_section;
    copy.name = name;
    for (const ExprPtr& expr : bound) copy.bound.push_back(expr->clone());
    copy.bound_types = bound_types;
    return copy;
  }

  /// Structural signature for instance memoisation: the bound
  /// argument *types* matter (their values become parameters), the
  /// values do not.
  std::string signature() const {
    std::ostringstream os;
    os << (is_section ? "op:" : "fn:") << name << '(';
    for (const TypePtr& type : bound_types) os << type_to_string(type) << ',';
    os << ')';
    return os.str();
  }
};

class Instantiator {
 public:
  explicit Instantiator(const Program& program)
      : source_(program), pardata_names_(program.pardata_names()) {}

  Program run() {
    result_.pardatas = source_.pardatas;
    // Roots: every function that needs no instantiation itself.
    for (const Function& fn : source_.functions) {
      if (fn.is_hof() || fn.is_polymorphic()) continue;
      Function copy = fn.clone();
      if (!copy.is_prototype) {
        const std::map<std::string, FnDesc> no_env;
        rewrite_stmts(copy.body, no_env);
      }
      result_.functions.push_back(std::move(copy));
    }
    return std::move(result_);
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    throw InstantiationError("skil instantiation: " + message);
  }

  [[noreturn]] void fail(Span span, const std::string& message) {
    if (!span.known()) fail(message);
    throw InstantiationError("skil instantiation: line " +
                                 std::to_string(span.line) + ":" +
                                 std::to_string(span.column) + ": " + message,
                             span.line, span.column);
  }

  // --- descriptor extraction ---------------------------------------------

  /// Is this expression a functional value (per its inferred type)?
  static bool is_functional(const Expr& expr) {
    return expr.type && expr.type->kind == Type::Kind::kFunction;
  }

  /// Builds the descriptor of a functional argument expression.
  FnDesc describe(const Expr& expr,
                  const std::map<std::string, FnDesc>& env) {
    switch (expr.kind) {
      case Expr::Kind::kSection: {
        FnDesc desc;
        desc.is_section = true;
        desc.name = expr.name;
        return desc;
      }
      case Expr::Kind::kName: {
        const auto bound_param = env.find(expr.name);
        if (bound_param != env.end()) return bound_param->second.clone();
        const Function* target = source_.find_function(expr.name);
        if (!target)
          fail(expr.span(), "functional argument '" + expr.name +
                                "' is not a known function");
        if (target->is_hof())
          fail(expr.span(),
               "passing the higher-order function '" + expr.name +
                   "' as a functional argument is the recursively-defined "
                   "class the paper's restriction excludes (see [1])");
        FnDesc desc;
        desc.name = expr.name;
        return desc;
      }
      case Expr::Kind::kCall: {
        // A partial application: describe the callee, then append the
        // bound value arguments (rewritten, so nested instantiable
        // calls inside them are handled too).
        FnDesc desc = describe(*expr.callee, env);
        for (const ExprPtr& arg : expr.args) {
          if (is_functional(*arg))
            fail(arg->span(),
                 "a functional value bound inside a partial application "
                 "is the recursively-defined class the paper's "
                 "restriction excludes (see [1])");
          desc.bound.push_back(rewrite_expr(arg->clone(), env));
          desc.bound_types.push_back(arg->type);
        }
        return desc;
      }
      default:
        fail(expr.span(), "unsupported functional argument expression");
    }
  }

  // --- instance construction ----------------------------------------------

  struct LiftedParam {
    std::string name;
    TypePtr type;
  };

  std::string instance_for(const Function& callee, const Subst& subst,
                           const std::vector<FnDesc*>& descs) {
    std::ostringstream key;
    key << callee.name << '|' << type_to_string(substitute(callee.type(),
                                                           subst));
    for (const FnDesc* desc : descs) key << '|' << desc->signature();
    const auto memo = instances_.find(key.str());
    if (memo != instances_.end()) return memo->second;

    const std::string name =
        callee.name + "_" + std::to_string(++instance_counter_[callee.name]);
    instances_[key.str()] = name;

    Function instance;
    instance.name = name;
    instance.ret = substitute(callee.ret, subst);
    instance.is_prototype = callee.is_prototype;

    // Parameters: every functional parameter disappears; its bound
    // values become leading lifted parameters (the paper lifts the
    // threshold `t` of above_thresh(t) into `float x`).
    std::map<std::string, FnDesc> env;
    std::size_t desc_index = 0;
    std::vector<Param> value_params;
    std::vector<Param> lifted_params;
    for (const Param& param : callee.params) {
      if (!param.is_function()) {
        value_params.push_back(
            Param{substitute(param.type, subst), param.name});
        continue;
      }
      FnDesc& desc = *descs[desc_index++];
      // Inside the instance the bound values are reachable through the
      // lifted parameters; the environment descriptor references them
      // by name.
      FnDesc inner;
      inner.is_section = desc.is_section;
      inner.name = desc.name;
      inner.bound_types = desc.bound_types;
      for (std::size_t i = 0; i < desc.bound.size(); ++i) {
        LiftedParam lifted{param.name + "_" + std::to_string(i),
                           substitute(desc.bound_types[i], subst)};
        lifted_params.push_back(Param{lifted.type, lifted.name});
        auto ref = make_name(lifted.name);
        ref->type = lifted.type;
        inner.bound.push_back(std::move(ref));
      }
      env[param.name] = std::move(inner);
    }
    instance.params = std::move(lifted_params);
    instance.params.insert(instance.params.end(), value_params.begin(),
                           value_params.end());

    if (!callee.is_prototype) {
      instance.body = clone_stmts(callee.body);
      substitute_types_in_stmts(instance.body, subst);
      rewrite_stmts(instance.body, env);
    }
    result_.functions.push_back(std::move(instance));
    return name;
  }

  // --- rewriting ------------------------------------------------------------

  void rewrite_stmts(std::vector<StmtPtr>& stmts,
                     const std::map<std::string, FnDesc>& env) {
    for (StmtPtr& stmt : stmts) {
      if (stmt->expr) stmt->expr = rewrite_expr(std::move(stmt->expr), env);
      if (stmt->init) stmt->init = rewrite_expr(std::move(stmt->init), env);
      if (stmt->for_init) {
        std::vector<StmtPtr> one;
        one.push_back(std::move(stmt->for_init));
        rewrite_stmts(one, env);
        stmt->for_init = std::move(one.front());
      }
      rewrite_stmts(stmt->body, env);
      rewrite_stmts(stmt->else_body, env);
    }
  }

  /// Applies a type substitution to every declared type in a cloned
  /// body (the monomorphisation half of the translation).
  void substitute_types_in_stmts(std::vector<StmtPtr>& stmts,
                                 const Subst& subst) {
    for (StmtPtr& stmt : stmts) {
      if (stmt->decl_type) stmt->decl_type = substitute(stmt->decl_type, subst);
      if (stmt->expr) substitute_types_in_expr(*stmt->expr, subst);
      if (stmt->init) substitute_types_in_expr(*stmt->init, subst);
      if (stmt->for_init) {
        std::vector<StmtPtr> one;
        one.push_back(std::move(stmt->for_init));
        substitute_types_in_stmts(one, subst);
        stmt->for_init = std::move(one.front());
      }
      substitute_types_in_stmts(stmt->body, subst);
      substitute_types_in_stmts(stmt->else_body, subst);
    }
  }

  void substitute_types_in_expr(Expr& expr, const Subst& subst) {
    if (expr.type) expr.type = substitute(expr.type, subst);
    if (expr.lhs) substitute_types_in_expr(*expr.lhs, subst);
    if (expr.rhs) substitute_types_in_expr(*expr.rhs, subst);
    if (expr.callee) substitute_types_in_expr(*expr.callee, subst);
    for (const ExprPtr& arg : expr.args)
      substitute_types_in_expr(*arg, subst);
  }

  ExprPtr rewrite_expr(ExprPtr expr,
                       const std::map<std::string, FnDesc>& env) {
    // Collapse curried direct application: f(a)(b) -> f(a, b).
    while (expr->kind == Expr::Kind::kCall &&
           expr->callee->kind == Expr::Kind::kCall) {
      ExprPtr inner = std::move(expr->callee);
      for (ExprPtr& arg : expr->args) inner->args.push_back(std::move(arg));
      inner->type = expr->type;
      expr = std::move(inner);
    }

    switch (expr->kind) {
      case Expr::Kind::kCall:
        return rewrite_call(std::move(expr), env);
      case Expr::Kind::kSection:
        fail(expr->span(),
             "an operator section must be applied or passed to a "
             "higher-order function");
      default:
        break;
    }
    if (expr->lhs) expr->lhs = rewrite_expr(std::move(expr->lhs), env);
    if (expr->rhs) expr->rhs = rewrite_expr(std::move(expr->rhs), env);
    for (ExprPtr& arg : expr->args) arg = rewrite_expr(std::move(arg), env);
    return expr;
  }

  ExprPtr rewrite_call(ExprPtr call,
                       const std::map<std::string, FnDesc>& env) {
    // A fully applied section: (+)(a, b) -> a + b.
    if (call->callee->kind == Expr::Kind::kSection) {
      if (call->args.size() != 2)
        fail(call->span(), "operator section applied to " +
                               std::to_string(call->args.size()) +
                               " arguments");
      auto lhs = rewrite_expr(std::move(call->args[0]), env);
      auto rhs = rewrite_expr(std::move(call->args[1]), env);
      auto binary =
          make_binary(call->callee->name, std::move(lhs), std::move(rhs));
      binary->type = call->type;
      return binary;
    }

    if (call->callee->kind != Expr::Kind::kName)
      fail(call->span(), "unsupported call form");
    const std::string& callee_name = call->callee->name;

    // Invocation of a functional parameter: inline the descriptor
    // (the instantiated above_thresh call of the paper's example).
    const auto bound = env.find(callee_name);
    if (bound != env.end()) {
      const FnDesc& desc = bound->second;
      std::vector<ExprPtr> args;
      for (const ExprPtr& lift : desc.bound) args.push_back(lift->clone());
      for (ExprPtr& arg : call->args)
        args.push_back(rewrite_expr(std::move(arg), env));
      if (desc.is_section) {
        if (args.size() != 2)
          fail(call->span(), "operator '" + desc.name +
                                 "' needs two arguments, got " +
                                 std::to_string(args.size()));
        auto binary = make_binary(desc.name, std::move(args[0]),
                                  std::move(args[1]));
        binary->type = call->type;
        return binary;
      }
      auto direct = make_call(make_name(desc.name), std::move(args));
      direct->type = call->type;
      // The inlined target may itself be polymorphic; run the direct
      // call through instantiation.
      return rewrite_expr(std::move(direct), env);
    }

    const Function* callee = source_.find_function(callee_name);
    if (!callee) {
      // A local variable of function type cannot occur in first-order
      // output; anything else (locals, unknown externs) passes through.
      for (ExprPtr& arg : call->args)
        arg = rewrite_expr(std::move(arg), env);
      return call;
    }

    if (call->args.size() < callee->params.size())
      fail(call->span(), "a partial application of '" + callee_name +
                             "' may only appear as a functional argument");

    if (!callee->is_hof() && !callee->is_polymorphic()) {
      for (ExprPtr& arg : call->args)
        arg = rewrite_expr(std::move(arg), env);
      return call;
    }

    // Unify the callee's signature with the call's argument/result
    // types to obtain the monomorphising substitution.
    Subst subst;
    for (std::size_t i = 0; i < call->args.size(); ++i) {
      if (!call->args[i]->type) continue;
      if (!unify(callee->params[i].type, call->args[i]->type, subst,
                 pardata_names_))
        fail(call->args[i]->span(),
             "argument " + std::to_string(i + 1) + " of '" + callee_name +
                 "' does not unify");
    }
    if (call->type) unify(callee->ret, call->type, subst, pardata_names_);

    // Split the arguments: functional ones become descriptors, value
    // ones stay; the new call passes the lifted values first.
    std::vector<FnDesc> descs;
    std::vector<ExprPtr> lifted_values;
    std::vector<ExprPtr> value_args;
    for (std::size_t i = 0; i < call->args.size(); ++i) {
      if (callee->params[i].is_function()) {
        descs.push_back(describe(*call->args[i], env));
        for (const ExprPtr& bound_value : descs.back().bound)
          lifted_values.push_back(bound_value->clone());
      } else {
        value_args.push_back(rewrite_expr(std::move(call->args[i]), env));
      }
    }
    std::vector<FnDesc*> desc_ptrs;
    for (FnDesc& desc : descs) desc_ptrs.push_back(&desc);
    const std::string instance = instance_for(*callee, subst, desc_ptrs);

    std::vector<ExprPtr> args = std::move(lifted_values);
    for (ExprPtr& arg : value_args) args.push_back(std::move(arg));
    auto rewritten = make_call(make_name(instance), std::move(args));
    rewritten->type = call->type;
    return rewritten;
  }

  const Program& source_;
  std::set<std::string> pardata_names_;
  Program result_;
  std::map<std::string, std::string> instances_;
  std::map<std::string, int> instance_counter_;
};

}  // namespace

Program instantiate(const Program& typed) {
  return Instantiator(typed).run();
}

}  // namespace skil::skilc
