// A reference interpreter for instantiated Skil programs.
//
// The skeletonization differential tests (tests/test_parix_skel_run)
// need a ground truth: the sequential meaning of a .skil program
// before and after the loop-to-skeleton rewrite must agree bit for
// bit.  This interpreter executes the *instantiated* (first-order,
// monomorphic) program directly over boxed values, so both sides of
// the comparison run through the same evaluator and the only variable
// is the rewrite itself.
//
// Supported surface: exactly what instantiation emits -- int/float
// scalars, array values with C reference semantics (an array argument
// aliases the caller's storage, so callee writes are visible), the
// C operators, calls to defined functions, and the four skeleton
// builtins by prototype (len, part_lower, part_upper, mk_index;
// instance-suffixed names like `len_1` resolve to the same builtins).
// Sections and partial applications never survive instantiation and
// are rejected.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "skilc/ast.h"
#include "support/error.h"

namespace skil::skilc {

class InterpError : public support::Error {
 public:
  explicit InterpError(const std::string& what) : support::Error(what) {}
};

/// A boxed runtime value.  Arrays share storage (C pointer
/// semantics); everything else is a plain scalar.
struct Value {
  enum class Kind { kVoid, kInt, kFloat, kArray };

  Kind kind = Kind::kVoid;
  long i = 0;    ///< kInt (also Index values: mk_index is the identity)
  double f = 0.0;  ///< kFloat
  std::shared_ptr<std::vector<Value>> array;  ///< kArray

  static Value unit() { return Value{}; }
  static Value of_int(long v) {
    Value value;
    value.kind = Kind::kInt;
    value.i = v;
    return value;
  }
  static Value of_float(double v) {
    Value value;
    value.kind = Kind::kFloat;
    value.f = v;
    return value;
  }
  static Value of_array(std::vector<Value> elems) {
    Value value;
    value.kind = Kind::kArray;
    value.array = std::make_shared<std::vector<Value>>(std::move(elems));
    return value;
  }
};

/// Bitwise equality: ints and sizes must match exactly, floats are
/// compared by bit pattern (so -0.0 != 0.0 and NaN == NaN, which is
/// what "bit-identical results" means).
bool value_bits_equal(const Value& a, const Value& b);

/// Calls `name` (exact instantiated name, or the pre-instantiation
/// root name -- roots keep their names, so `main_like` entry points
/// resolve exactly) with `args`, executing at most `step_budget`
/// evaluation steps before throwing InterpError (fuzz safety net).
Value run_function(const Program& program, const std::string& name,
                   std::vector<Value> args, long step_budget = 50000000);

}  // namespace skil::skilc
