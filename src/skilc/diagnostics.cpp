#include "skilc/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>

namespace skil::skilc {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string render_diagnostic(const Diagnostic& diag,
                              const std::string& file) {
  std::ostringstream os;
  os << file;
  if (diag.span.known())
    os << ':' << diag.span.line << ':' << diag.span.column;
  os << ": " << severity_name(diag.severity) << ": [" << diag.pass << "] "
     << diag.message;
  if (!diag.hint.empty()) os << "\n    hint: " << diag.hint;
  return os.str();
}

void DiagnosticSink::report(Severity severity, std::string pass, Span span,
                            std::string message, std::string hint) {
  if (severity == Severity::kError) ++errors_;
  if (severity == Severity::kWarning) ++warnings_;
  diags_.push_back(Diagnostic{severity, std::move(pass), span,
                              std::move(message), std::move(hint)});
}

void DiagnosticSink::sort_by_location() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.span.line, a.span.column, a.pass,
                                     a.message) <
                            std::tie(b.span.line, b.span.column, b.pass,
                                     b.message);
                   });
}

std::string DiagnosticSink::render(const std::string& file) const {
  std::ostringstream os;
  for (const Diagnostic& diag : diags_)
    os << render_diagnostic(diag, file) << '\n';
  return os.str();
}

namespace {

void json_string(std::ostringstream& os, const std::string& text) {
  os << '"';
  for (const char ch : text) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string DiagnosticSink::render_json(const std::string& file) const {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const Diagnostic& diag : diags_) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"file\": ";
    json_string(os, file);
    os << ", \"line\": " << diag.span.line
       << ", \"column\": " << diag.span.column << ", \"severity\": ";
    json_string(os, severity_name(diag.severity));
    os << ", \"pass\": ";
    json_string(os, diag.pass);
    os << ", \"message\": ";
    json_string(os, diag.message);
    os << ", \"hint\": ";
    json_string(os, diag.hint);
    os << "}";
  }
  os << (first ? "]" : "\n]");
  return os.str();
}

}  // namespace skil::skilc
