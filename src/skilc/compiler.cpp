#include "skilc/compiler.h"

#include "skilc/emit.h"
#include "skilc/instantiate.h"
#include "skilc/parser.h"
#include "skilc/typecheck.h"

namespace skil::skilc {

CompileResult compile(const std::string& source) {
  return compile(source, AnalyzeOptions{});
}

CompileResult compile(const std::string& source,
                      const AnalyzeOptions& options) {
  CompileResult result;
  result.typed = parse(source);
  typecheck(result.typed);

  DiagnosticSink sink;
  analyze(result.typed, sink, options);
  for (const Diagnostic& diag : sink.diagnostics()) {
    if (diag.severity != Severity::kError) continue;
    std::string what = "skil analysis: ";
    if (diag.span.known())
      what += "line " + std::to_string(diag.span.line) + ":" +
              std::to_string(diag.span.column) + ": ";
    what += diag.message;
    throw AnalysisError(what, diag.span.line, diag.span.column);
  }
  result.diagnostics = sink.diagnostics();

  result.instantiated = instantiate(result.typed);
  result.c_code = emit_program(result.instantiated);
  return result;
}

}  // namespace skil::skilc
