#include "skilc/compiler.h"

#include "skilc/emit.h"
#include "skilc/instantiate.h"
#include "skilc/parser.h"
#include "skilc/typecheck.h"

namespace skil::skilc {

CompileResult compile(const std::string& source) {
  return compile(source, AnalyzeOptions{});
}

CompileResult compile(const std::string& source,
                      const AnalyzeOptions& options) {
  CompileOptions full;
  full.analyze = options;
  return compile(source, full);
}

CompileResult compile(const std::string& source,
                      const CompileOptions& options) {
  CompileResult result;
  result.typed = parse(source);
  typecheck(result.typed);

  AnalyzeOptions analyze_options = options.analyze;
  // The rewrites' own notes supersede the advisory passes: running
  // both would report every decision twice.
  if (options.fuse) analyze_options.fusion = false;
  if (options.skeletonize) analyze_options.skeletonize = false;

  DiagnosticSink sink;
  analyze(result.typed, sink, analyze_options);
  for (const Diagnostic& diag : sink.diagnostics()) {
    if (diag.severity != Severity::kError) continue;
    std::string what = "skil analysis: ";
    if (diag.span.known())
      what += "line " + std::to_string(diag.span.line) + ":" +
              std::to_string(diag.span.column) + ": ";
    what += diag.message;
    throw AnalysisError(what, diag.span.line, diag.span.column);
  }

  if (options.skeletonize) {
    // Runs before fusion so recognized loops become skeleton calls the
    // fusion matcher can compose with hand-written neighbours.  The
    // synthesized customizing functions and spliced skeleton bodies
    // carry no type annotations; re-typechecking fills them in.
    result.skeletonize = skeletonize_program(result.typed, sink);
    if (result.skeletonize.recognized() > 0) typecheck(result.typed);
    sink.sort_by_location();
  }

  if (options.fuse) {
    // Analysis passed, so every customizing function the matcher will
    // consult has a purity summary.  The synthesized wrappers carry no
    // type annotations; re-typechecking fills them in (the checker
    // collects all signatures before checking bodies, so the appended
    // wrappers may call functions defined anywhere in the program).
    result.fusion = fuse_program(result.typed, sink);
    if (result.fusion.fused() > 0) typecheck(result.typed);
    sink.sort_by_location();
  }
  result.diagnostics = sink.diagnostics();

  result.instantiated = instantiate(result.typed);
  result.c_code = emit_program(result.instantiated);
  return result;
}

}  // namespace skil::skilc
