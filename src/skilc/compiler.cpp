#include "skilc/compiler.h"

#include "skilc/emit.h"
#include "skilc/instantiate.h"
#include "skilc/parser.h"
#include "skilc/typecheck.h"

namespace skil::skilc {

CompileResult compile(const std::string& source) {
  CompileResult result;
  result.typed = parse(source);
  typecheck(result.typed);
  result.instantiated = instantiate(result.typed);
  result.c_code = emit_program(result.instantiated);
  return result;
}

}  // namespace skil::skilc
