// Semantic analysis passes over type-checked Skil programs.
//
// The paper's pitch is that skeletons make parallelism safe by
// construction; these passes make the compiler actually reject the
// unsafe programs instead of compiling them.  On top of the CFG
// (cfg.h) and the bit-vector dataflow framework (dataflow.h):
//
//   init             definite initialization: a local read on some
//                    path before any assignment is an error.
//   unreachable      statements no path from the function entry can
//                    reach (code after return, after while(1), ...).
//   dead-store       an assigned value no path ever reads.
//   unused           parameters and locals that are never read.
//   shadow           declarations that shadow a parameter, an earlier
//                    local, a function, or a pardata type.
//   skeleton-purity  every function passed to a map/fold/gen_mult/
//                    scan-family skeleton must be pure/local: the
//                    paper applies argument functions "in parallel on
//                    all partitions", so writing a partially-applied
//                    (shared) argument or any other free variable, or
//                    calling an impure builtin, races across
//                    partitions and is an error.
//
// Errors (init, skeleton-purity) block compilation: compile() refuses
// to instantiate a program with error-level findings.  Warnings are
// advisory (skil-lint --Werror promotes them).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "skilc/ast.h"
#include "skilc/diagnostics.h"
#include "support/error.h"

namespace skil::skilc {

struct SkeletonizeCounters;

/// Per-pass enable switches (all on by default).
struct AnalyzeOptions {
  bool init = true;
  bool unreachable = true;
  bool dead_store = true;
  bool unused = true;
  bool shadow = true;
  bool skeleton_purity = true;
  /// Advisory fusion analysis (DESIGN.md section 13): note-level
  /// findings for adjacent skeleton compositions that can fuse (or
  /// why they cannot).  Never rewrites; compile() performs the actual
  /// rewrite only when CompileOptions::fuse asks for it.
  bool fusion = true;
  /// Advisory skeletonization analysis (DESIGN.md section 16):
  /// note-level findings for sequential loops that can rewrite to
  /// skeleton calls (or why they cannot).  Never rewrites; compile()
  /// performs the actual rewrite only under CompileOptions::
  /// skeletonize.
  bool skeletonize = true;
};

/// One entry of the pass registry: the user-facing pass name (the
/// skil-lint `--no-<name>` flag spelling) and the AnalyzeOptions
/// member it toggles.
struct AnalyzePass {
  const char* name;
  bool AnalyzeOptions::*flag;
};

/// Every optional analysis pass, in execution order.  skil-lint
/// derives its `--no-<pass>` flags from this table, so a new pass
/// cannot be silently missing from the CLI.
const std::vector<AnalyzePass>& analyze_passes();

/// True when `name` is one of the builtins the purity analysis treats
/// as impure (rand, print, time, ...).  Exposed for the
/// skeletonization pass's body classifier.
bool impure_builtin(const std::string& name);

/// An error-level analysis finding raised by compile() when a program
/// fails the semantic checks (use before initialization, an impure
/// skeleton argument, ...).
class AnalysisError : public support::Error {
 public:
  explicit AnalysisError(const std::string& what) : support::Error(what) {}
  AnalysisError(const std::string& what, int line, int column)
      : support::Error(what, line, column) {}
};

/// Call-graph-transitive purity summaries of a program's functions:
/// the skeleton-purity pass's machinery behind a stable front, so
/// other passes (the fusion pass, DESIGN.md section 13) can prove a
/// customizing function safe to compose without re-deriving the
/// fixpoint.
class PurityOracle {
 public:
  explicit PurityOracle(const Program& program);
  ~PurityOracle();
  PurityOracle(PurityOracle&&) noexcept;
  PurityOracle& operator=(PurityOracle&&) noexcept;

  /// True when `name` resolves to a defined function whose transitive
  /// summary shows no parameter writes, no free-variable writes and no
  /// impure builtin calls.  On failure, `why` (if non-null) receives a
  /// description of the first offending site -- e.g. "assigns 'base'
  /// at line 16:3" or "calls the impure builtin 'rand' at line 4:10"
  /// -- and `where` its span.
  bool pure(const std::string& name, std::string* why = nullptr,
            Span* where = nullptr) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Runs the enabled passes over a *type-checked* program, collecting
/// findings into `sink` (sorted by source location on return).  When
/// `skeletonize_counters` is non-null it receives the advisory
/// skeletonization counters (zeroed when the pass is disabled).
void analyze(const Program& program, DiagnosticSink& sink,
             const AnalyzeOptions& options = {},
             SkeletonizeCounters* skeletonize_counters = nullptr);

/// Analyze-only front door used by skil-lint: lex/parse/typecheck the
/// source and run the analysis passes, converting lexer/parser/type
/// errors into diagnostics instead of exceptions.  Nothing is
/// instantiated or emitted.
void lint_source(const std::string& source, DiagnosticSink& sink,
                 const AnalyzeOptions& options = {},
                 SkeletonizeCounters* skeletonize_counters = nullptr);

}  // namespace skil::skilc
