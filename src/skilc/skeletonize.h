// Auto-skeletonization: rewriting sequential loops to skeleton calls
// (DESIGN.md section 16; ROADMAP item 2(a)).
//
// The paper's promise is that programmers write imperative code and
// the skeletons carry the parallelism -- but a plain `for`-loop nest
// in a .skil program stays sequential unless the programmer calls
// `array_map`/`array_fold`/`array_gen_mult` by hand.  This pass
// closes that gap: it recognizes the three loop idioms the paper's
// data-parallel skeletons cover and rewrites them into skeleton calls
// through synthesized customizing functions.
//
// Recognition ladder (each step must hold; the first failure names
// the exact blocking site in a note-level diagnostic):
//
//   1. canonical header      for (i = lo; i < hi; i = i + 1), the
//                            induction variable written nowhere else
//                            and dead after the loop (backward
//                            liveness over the PR 5 CFG/dataflow
//                            solver -- the rewrite leaves `i`
//                            unassigned, so a live-out `i` blocks it)
//   2. whole-array bounds    lo in {0, part_lower(X)}, hi in
//                            {len(X), part_upper(X)} for the array X
//                            the body is indexed with
//   3. body classification
//        dst[i] = EXPR(src[i], ...)          -> array_map
//        acc = acc op EXPR(src[i], ...)      -> array_fold  (op in +, *;
//                                               the preceding statement
//                                               must set acc to op's
//                                               identity)
//        c[i][j] = c[i][j] (+) a[i][k](*)b[k][j]
//          over the triple i/j/k nest        -> array_gen_mult
//      where EXPR reads exactly one array, only at index [i], calls
//      only provably pure functions (PurityOracle) and never reads
//      the induction variable or the accumulator itself.
//
// Rejections are counted per reason and reported as advisory
// `[skeletonize]` notes: loop-carried dependences (`a[i-1]`),
// indirect indices (`a[p[i]]`), non-unit strides, impure calls,
// non-spanning bounds, a live induction variable, an accumulator
// whose initial value is not the operator's identity.
//
// The advisory entry point (analyze_skeletonize, skil-lint's
// `[skeletonize]` pass) never mutates; compile() performs the rewrite
// only under CompileOptions::skeletonize, re-typechecks, and then
// hands the rewritten calls to the PR 7 fusion pass -- a recognized
// map adjacent to a written skeleton call fuses like any other.
#pragma once

#include <string>

#include "skilc/ast.h"
#include "skilc/diagnostics.h"

namespace skil::skilc {

/// Outcome counters of one skeletonization run (loops seen /
/// recognized per target / rejected per reason), reported on
/// CompileResult and in the skil-lint JSON.
struct SkeletonizeCounters {
  int loops_seen = 0;           ///< for-loops examined (non-HOF functions)
  int recognized_map = 0;       ///< element-wise updates -> array_map
  int recognized_fold = 0;      ///< accumulations -> array_fold
  int recognized_gen_mult = 0;  ///< triple nests -> array_gen_mult
  int rejected_header = 0;      ///< not a canonical counted loop
  int rejected_stride = 0;      ///< non-unit step
  int rejected_induction = 0;   ///< induction variable written in the
                                ///< body, read in the element
                                ///< computation, or live after the loop
  int rejected_carried = 0;     ///< cross-iteration read (a[i-1], a[i+1])
  int rejected_indirect = 0;    ///< index expression is not the
                                ///< induction variable (a[p[i]], a[2*i])
  int rejected_impure = 0;      ///< body calls an impure or unprovable
                                ///< function
  int rejected_bounds = 0;      ///< bounds do not span a whole array
  int rejected_accumulator = 0; ///< fold seed is not the operator's
                                ///< identity, or the operator does not
                                ///< form a recognized accumulation
  int rejected_shape = 0;       ///< anything else (multi-statement
                                ///< bodies, several source arrays,
                                ///< control flow, unsupported types)

  int recognized() const {
    return recognized_map + recognized_fold + recognized_gen_mult;
  }
  int rejected() const {
    return rejected_header + rejected_stride + rejected_induction +
           rejected_carried + rejected_indirect + rejected_impure +
           rejected_bounds + rejected_accumulator + rejected_shape;
  }

  /// Stable-key JSON object, e.g. {"loops_seen": 3, ...,
  /// "recognized": 2, "rejected": 1} (the skil-lint report block).
  std::string render_json() const;

  /// Field-wise sum (skil-lint totals counters across input files).
  SkeletonizeCounters& operator+=(const SkeletonizeCounters& other);
};

/// Rewrites every recognized loop of the *type-checked* program into
/// the corresponding skeleton call, synthesizing customizing
/// functions (and canonical skeleton definitions when the program has
/// none), and reporting one note per decision into `sink`.  The
/// caller must re-typecheck the program (synthesized functions carry
/// no type annotations).
SkeletonizeCounters skeletonize_program(Program& program,
                                        DiagnosticSink& sink);

/// Advisory form: identical recognition and diagnostics ("can
/// skeletonize" instead of "skeletonized"), no mutation.  Used by
/// skil-lint (disable with --no-skeletonize).
SkeletonizeCounters analyze_skeletonize(const Program& program,
                                        DiagnosticSink& sink);

}  // namespace skil::skilc
