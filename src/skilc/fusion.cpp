#include "skilc/fusion.h"

#include <string>
#include <utility>
#include <vector>

#include "skilc/analyze.h"

namespace skil::skilc {

namespace {

std::string spell(Span span) {
  return "line " + std::to_string(span.line) + ":" +
         std::to_string(span.column);
}

/// The skeleton families the matcher recognises (same spelling rule
/// as the skeleton-purity pass: user programs define their own
/// map/fold headers, the paper fixes only the shape).
bool is_map_name(const std::string& name) {
  return name.find("map") != std::string::npos;
}
bool is_fold_name(const std::string& name) {
  return name.find("fold") != std::string::npos;
}

/// A matched `<map>(f, a, b);` statement.
struct MapCall {
  Expr* call = nullptr;
  Expr* stage = nullptr;  ///< the customizing argument (args[0])
  Expr* src = nullptr;    ///< args[1], a kName
  Expr* dst = nullptr;    ///< args[2], a kName
};

bool match_map_stmt(Stmt& stmt, MapCall& out) {
  if (stmt.kind != Stmt::Kind::kExpr || !stmt.expr) return false;
  Expr& call = *stmt.expr;
  if (call.kind != Expr::Kind::kCall ||
      call.callee->kind != Expr::Kind::kName ||
      !is_map_name(call.callee->name) || call.args.size() != 3)
    return false;
  if (call.args[1]->kind != Expr::Kind::kName ||
      call.args[2]->kind != Expr::Kind::kName)
    return false;
  out.call = &call;
  out.stage = call.args[0].get();
  out.src = call.args[1].get();
  out.dst = call.args[2].get();
  return true;
}

/// Finds a `<fold>(conv, op, inter)` call anywhere inside `expr`
/// (fold results are consumed: `x = fold(...)`, `return fold(...)`).
Expr* find_fold_call(Expr& expr, const std::string& inter) {
  if (expr.kind == Expr::Kind::kCall &&
      expr.callee->kind == Expr::Kind::kName &&
      is_fold_name(expr.callee->name) && expr.args.size() == 3 &&
      expr.args[2]->kind == Expr::Kind::kName &&
      expr.args[2]->name == inter)
    return &expr;
  if (expr.lhs)
    if (Expr* found = find_fold_call(*expr.lhs, inter)) return found;
  if (expr.rhs)
    if (Expr* found = find_fold_call(*expr.rhs, inter)) return found;
  if (expr.callee)
    if (Expr* found = find_fold_call(*expr.callee, inter)) return found;
  for (ExprPtr& arg : expr.args)
    if (Expr* found = find_fold_call(*arg, inter)) return found;
  return nullptr;
}

/// A customizing stage resolved to its underlying named function.
struct Stage {
  std::string name;
  const Function* target = nullptr;
  std::size_t bound = 0;  ///< partially-applied leading arguments
  Span span;
  bool named = false;  ///< resolved to a name at all (sections are not)
  bool synthesized = false;  ///< a wrapper this run built (pure by
                             ///< construction: it composes two proven
                             ///< stages and nothing else)
};

// Stage resolution lives on the Fuser: it also consults the wrappers
// synthesized earlier in the same run, so chains (map|map|map) keep
// fusing through their own intermediates.

/// Collects every kName expression spelling `name` in a statement
/// tree (reads, writes and stores alike -- any other occurrence of
/// the intermediate blocks its elimination).
void collect_names(const Expr& expr, const std::string& name,
                   std::vector<const Expr*>& out) {
  if (expr.kind == Expr::Kind::kName && expr.name == name)
    out.push_back(&expr);
  if (expr.lhs) collect_names(*expr.lhs, name, out);
  if (expr.rhs) collect_names(*expr.rhs, name, out);
  if (expr.callee) collect_names(*expr.callee, name, out);
  for (const ExprPtr& arg : expr.args) collect_names(*arg, name, out);
}

void collect_names(const std::vector<StmtPtr>& stmts, const std::string& name,
                   std::vector<const Expr*>& out) {
  for (const StmtPtr& stmt : stmts) {
    if (stmt->expr) collect_names(*stmt->expr, name, out);
    if (stmt->init) collect_names(*stmt->init, name, out);
    if (stmt->for_init) {
      if (stmt->for_init->expr)
        collect_names(*stmt->for_init->expr, name, out);
      if (stmt->for_init->init)
        collect_names(*stmt->for_init->init, name, out);
    }
    collect_names(stmt->body, name, out);
    collect_names(stmt->else_body, name, out);
  }
}

class Fuser {
 public:
  Fuser(Program& program, DiagnosticSink& sink, bool rewrite)
      : program_(program), sink_(sink), rewrite_(rewrite), oracle_(program) {}

  FusionStats run() {
    for (Function& fn : program_.functions) {
      if (fn.is_prototype) continue;
      process_stmts(fn.body, fn);
    }
    for (Function& wrapper : synthesized_)
      program_.functions.push_back(std::move(wrapper));
    synthesized_.clear();
    return stats_;
  }

 private:
  void process_stmts(std::vector<StmtPtr>& stmts, const Function& fn) {
    for (std::size_t i = 0; i < stmts.size(); ++i) {
      // Nested statement lists first (a composition inside a loop
      // body is as fusible as one at the top level).
      process_nested(*stmts[i], fn);
      if (i + 1 >= stmts.size()) continue;
      MapCall first;
      if (!match_map_stmt(*stmts[i], first)) continue;

      MapCall second;
      if (match_map_stmt(*stmts[i + 1], second) &&
          second.src->name == first.dst->name) {
        if (try_fuse_map_map(stmts, i, first, second, fn)) --i;  // re-pair
        continue;
      }
      Expr* fold = nullptr;
      if (stmts[i + 1]->expr)
        fold = find_fold_call(*stmts[i + 1]->expr, first.dst->name);
      if (fold == nullptr && stmts[i + 1]->init)
        fold = find_fold_call(*stmts[i + 1]->init, first.dst->name);
      if (fold != nullptr) {
        if (try_fuse_map_fold(stmts, i, first, *fold, fn)) --i;
        continue;
      }
    }
  }

  void process_nested(Stmt& stmt, const Function& fn) {
    if (!stmt.body.empty()) process_stmts(stmt.body, fn);
    if (!stmt.else_body.empty()) process_stmts(stmt.else_body, fn);
  }

  /// Common safety gate for one recognised composition.  Returns true
  /// when the stages compose; reports the rejection note otherwise.
  bool composable(const Expr& call_a, const Expr& call_b, const Stage& f,
                  const Stage& g, const std::string& inter,
                  const Expr* inter_read, const MapCall& first,
                  const Function& fn) {
    ++stats_.seen;
    const std::string where_both = "'" + call_a.callee->name + "' (" +
                                   spell(call_a.span()) + ") with '" +
                                   call_b.callee->name + "' (" +
                                   spell(call_b.span()) + ")";
    const std::string prefix = "composition of " + where_both + " not fused: ";
    for (const Stage* stage : {&f, &g}) {
      if (!stage->named || stage->target == nullptr) {
        ++stats_.rejected_shape;
        sink_.report(Severity::kNote, "fusion", call_a.span(),
                     prefix + "a stage is not a named customizing function");
        return false;
      }
    }
    for (const Stage* stage : {&f, &g}) {
      if (stage->bound > 0) {
        ++stats_.rejected_partial;
        sink_.report(Severity::kNote, "fusion", call_a.span(),
                     prefix + "'" + stage->name + "' is partially applied (" +
                         std::to_string(stage->bound) +
                         " bound argument(s) would be shared across "
                         "partitions)");
        return false;
      }
    }
    for (const Stage* stage : {&f, &g}) {
      if (stage->synthesized) continue;
      std::string why;
      if (!oracle_.pure(stage->name, &why)) {
        ++stats_.rejected_impure;
        sink_.report(Severity::kNote, "fusion", call_a.span(),
                     prefix + "customizing function '" + stage->name + "' " +
                         why);
        return false;
      }
    }
    for (const Stage* stage : {&f, &g}) {
      if (stage->target->params.size() != 2) {
        ++stats_.rejected_shape;
        sink_.report(Severity::kNote, "fusion", call_a.span(),
                     prefix + "'" + stage->name +
                         "' does not have the ($t, Index) customizing "
                         "signature");
        return false;
      }
    }
    // The intermediate must have exactly the two matched occurrences
    // (the first call's target and the second call's source); any
    // other reader still needs the materialized array.
    std::vector<const Expr*> occurrences;
    collect_names(fn.body, inter, occurrences);
    for (const Expr* occurrence : occurrences) {
      if (occurrence == first.dst || occurrence == inter_read) continue;
      ++stats_.rejected_intermediate;
      sink_.report(Severity::kNote, "fusion", call_a.span(),
                   prefix + "the intermediate '" + inter +
                       "' has another reader at " +
                       spell(occurrence->span()));
      return false;
    }
    return true;
  }

  /// Synthesizes `ret __fused_<outer>_<inner>(P0 x, Index ix) { return
  /// outer(inner(x, ix), ix); }` next to the program's functions.
  std::string synthesize_wrapper(const Stage& inner, const Stage& outer,
                                 Span site) {
    std::string name = "__fused_" + outer.name + "_" + inner.name;
    while (program_.find_function(name) != nullptr || pending_name(name))
      name += "_";
    Function wrapper;
    wrapper.ret = outer.target->ret;
    wrapper.name = name;
    wrapper.params = inner.target->params;  // shared immutable TypePtrs
    wrapper.line = site.line;
    wrapper.column = site.column;
    const std::string& elem = wrapper.params[0].name;
    const std::string& index = wrapper.params[1].name;
    std::vector<ExprPtr> inner_args;
    inner_args.push_back(make_name(elem));
    inner_args.push_back(make_name(index));
    ExprPtr inner_call =
        make_call(make_name(inner.name), std::move(inner_args));
    std::vector<ExprPtr> outer_args;
    outer_args.push_back(std::move(inner_call));
    outer_args.push_back(make_name(index));
    ExprPtr outer_call =
        make_call(make_name(outer.name), std::move(outer_args));
    auto ret = std::make_unique<Stmt>();
    ret->kind = Stmt::Kind::kReturn;
    ret->expr = std::move(outer_call);
    wrapper.body.push_back(std::move(ret));
    synthesized_.push_back(std::move(wrapper));
    return name;
  }

  bool pending_name(const std::string& name) const {
    for (const Function& fn : synthesized_)
      if (fn.name == name) return true;
    return false;
  }

  Stage resolve_stage(const Expr& arg) const {
    Stage stage;
    stage.span = arg.span();
    if (arg.kind == Expr::Kind::kName) {
      stage.name = arg.name;
      stage.named = true;
    } else if (arg.kind == Expr::Kind::kCall &&
               arg.callee->kind == Expr::Kind::kName) {
      stage.name = arg.callee->name;
      stage.bound = arg.args.size();
      stage.named = true;
    } else {
      return stage;
    }
    const Function* fn = program_.find_function(stage.name);
    if (fn != nullptr && !fn->is_prototype) {
      stage.target = fn;
      return stage;
    }
    for (const Function& wrapper : synthesized_) {
      if (wrapper.name == stage.name) {
        stage.target = &wrapper;
        stage.synthesized = true;
        break;
      }
    }
    return stage;
  }

  bool try_fuse_map_map(std::vector<StmtPtr>& stmts, std::size_t i,
                        MapCall& first, MapCall& second, const Function& fn) {
    const Stage f = resolve_stage(*first.stage);
    const Stage g = resolve_stage(*second.stage);
    if (!composable(*first.call, *second.call, f, g, first.dst->name,
                    second.src, first, fn))
      return false;
    ++stats_.fused_map_map;
    const std::string where_both =
        "'" + first.call->callee->name + "' (" + spell(first.call->span()) +
        ") with '" + second.call->callee->name + "' (" +
        spell(second.call->span()) + ")";
    if (!rewrite_) {
      sink_.report(Severity::kNote, "fusion", first.call->span(),
                   "can fuse " + where_both + ": composing '" + g.name +
                       "' after '" + f.name +
                       "' eliminates the intermediate '" + first.dst->name +
                       "' and one map pass");
      return false;  // advisory: leave the statements in place
    }
    const std::string wrapper =
        synthesize_wrapper(f, g, first.call->span());
    sink_.report(Severity::kNote, "fusion", first.call->span(),
                 "fused " + where_both + ": '" + wrapper + "' composes '" +
                     g.name + "' after '" + f.name +
                     "' and eliminates the intermediate '" + first.dst->name +
                     "'");
    first.call->args[0] = make_name(wrapper);
    first.call->args[2] = std::move(second.call->args[2]);
    stmts.erase(stmts.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    return true;
  }

  bool try_fuse_map_fold(std::vector<StmtPtr>& stmts, std::size_t i,
                         MapCall& first, Expr& fold, const Function& fn) {
    const Stage f = resolve_stage(*first.stage);
    const Stage conv = resolve_stage(*fold.args[0]);
    if (!composable(*first.call, fold, f, conv, first.dst->name,
                    fold.args[2].get(), first, fn))
      return false;
    ++stats_.fused_map_fold;
    const std::string where_both =
        "'" + first.call->callee->name + "' (" + spell(first.call->span()) +
        ") with '" + fold.callee->name + "' (" + spell(fold.span()) + ")";
    if (!rewrite_) {
      sink_.report(Severity::kNote, "fusion", first.call->span(),
                   "can fuse " + where_both + ": composing the conversion '" +
                       conv.name + "' after '" + f.name +
                       "' eliminates the intermediate '" + first.dst->name +
                       "' and one map pass");
      return false;
    }
    const std::string wrapper =
        synthesize_wrapper(f, conv, first.call->span());
    sink_.report(Severity::kNote, "fusion", first.call->span(),
                 "fused " + where_both + ": '" + wrapper +
                     "' composes the conversion '" + conv.name + "' after '" +
                     f.name + "' and eliminates the intermediate '" +
                     first.dst->name + "'");
    fold.args[0] = make_name(wrapper);
    fold.args[2] = std::move(first.call->args[1]);
    stmts.erase(stmts.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }

  Program& program_;
  DiagnosticSink& sink_;
  const bool rewrite_;
  PurityOracle oracle_;
  FusionStats stats_;
  std::vector<Function> synthesized_;
};

}  // namespace

FusionStats fuse_program(Program& program, DiagnosticSink& sink) {
  return Fuser(program, sink, /*rewrite=*/true).run();
}

FusionStats analyze_fusion(const Program& program, DiagnosticSink& sink) {
  // The no-rewrite path never mutates (every mutation sits behind the
  // rewrite_ flag), so the advisory front can accept a const program.
  return Fuser(const_cast<Program&>(program), sink, /*rewrite=*/false).run();
}

}  // namespace skil::skilc
