// Implementation of auto-skeletonization (skeletonize.h).
//
// The pass walks every first-order monomorphic function definition,
// probes each for-loop with the matcher library (matchers.h) and the
// recognition ladder documented in the header, and -- in rewrite mode
// -- replaces recognized loops with skeleton calls through synthesized
// customizing functions.  When the program does not already use a
// name, the canonical skeleton definitions (the paper's section 2.4
// bodies, verbatim) are parsed from embedded snippets and spliced in,
// so a rewritten program is self-contained: it instantiates, emits and
// interprets without any external library.
//
// Two invariants matter for testing:
//
//   * Advisory and rewrite mode make identical decisions and claim
//     identical names, so `can skeletonize ... into 'array_map(...)'`
//     notes from skil-lint name exactly the call the rewrite would
//     produce.  Every choice that could diverge (stage numbering,
//     skeleton-name collisions) goes through the shared claim table.
//
//   * Rewrites are bit-identity-preserving.  Loop bounds are pinned
//     to exactly the arrays the synthesized skeletons iterate (map:
//     the source; gen_mult: len(a) for i, len(b) for j and k), so a
//     rewrite can never change a trip count.  Fold recognition is
//     restricted to integer accumulators seeded with the operator's
//     identity (the canonical fold seeds from the first element, and
//     `0 + x == x` only holds bitwise for ints), and the rewritten
//     call is guarded on a non-empty partition so the empty case
//     keeps the seed, exactly as the zero-trip loop would; gen_mult
//     keeps the source's i/j/k iteration and accumulation order.

#include "skilc/skeletonize.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "skilc/analyze.h"
#include "skilc/cfg.h"
#include "skilc/dataflow.h"
#include "skilc/matchers.h"
#include "skilc/parser.h"

namespace skil::skilc {

namespace m = matchers;

std::string SkeletonizeCounters::render_json() const {
  std::ostringstream os;
  os << "{\"loops_seen\": " << loops_seen
     << ", \"recognized_map\": " << recognized_map
     << ", \"recognized_fold\": " << recognized_fold
     << ", \"recognized_gen_mult\": " << recognized_gen_mult
     << ", \"rejected_header\": " << rejected_header
     << ", \"rejected_stride\": " << rejected_stride
     << ", \"rejected_induction\": " << rejected_induction
     << ", \"rejected_carried\": " << rejected_carried
     << ", \"rejected_indirect\": " << rejected_indirect
     << ", \"rejected_impure\": " << rejected_impure
     << ", \"rejected_bounds\": " << rejected_bounds
     << ", \"rejected_accumulator\": " << rejected_accumulator
     << ", \"rejected_shape\": " << rejected_shape
     << ", \"recognized\": " << recognized()
     << ", \"rejected\": " << rejected() << "}";
  return os.str();
}

SkeletonizeCounters& SkeletonizeCounters::operator+=(
    const SkeletonizeCounters& other) {
  loops_seen += other.loops_seen;
  recognized_map += other.recognized_map;
  recognized_fold += other.recognized_fold;
  recognized_gen_mult += other.recognized_gen_mult;
  rejected_header += other.rejected_header;
  rejected_stride += other.rejected_stride;
  rejected_induction += other.rejected_induction;
  rejected_carried += other.rejected_carried;
  rejected_indirect += other.rejected_indirect;
  rejected_impure += other.rejected_impure;
  rejected_bounds += other.rejected_bounds;
  rejected_accumulator += other.rejected_accumulator;
  rejected_shape += other.rejected_shape;
  return *this;
}

namespace {

std::string spell(Span span) {
  return "line " + std::to_string(span.line) + ":" +
         std::to_string(span.column);
}

/// Minimal source rendering of an expression, for diagnostics
/// ("reads 'a[i - 1]' across iterations").
std::string spell_expr(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kIntLit:
      return std::to_string(e.int_value);
    case Expr::Kind::kFloatLit: {
      std::ostringstream os;
      os << e.float_value;
      return os.str();
    }
    case Expr::Kind::kName:
      return e.name;
    case Expr::Kind::kSection:
      return "(" + e.name + ")";
    case Expr::Kind::kBinary:
      return spell_expr(*e.lhs) + " " + e.name + " " + spell_expr(*e.rhs);
    case Expr::Kind::kUnary:
      return e.name + spell_expr(*e.lhs);
    case Expr::Kind::kAssign:
      return spell_expr(*e.lhs) + " = " + spell_expr(*e.rhs);
    case Expr::Kind::kIndex:
      return spell_expr(*e.lhs) + "[" + spell_expr(*e.rhs) + "]";
    case Expr::Kind::kCall: {
      std::string out = spell_expr(*e.callee) + "(";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += spell_expr(*e.args[i]);
      }
      return out + ")";
    }
  }
  return "";
}

bool expr_contains_index(const Expr& e) {
  if (e.kind == Expr::Kind::kIndex) return true;
  if (e.lhs && expr_contains_index(*e.lhs)) return true;
  if (e.rhs && expr_contains_index(*e.rhs)) return true;
  if (e.callee && expr_contains_index(*e.callee)) return true;
  for (const ExprPtr& arg : e.args)
    if (expr_contains_index(*arg)) return true;
  return false;
}

bool stmt_contains_index(const Stmt& s) {
  if (s.expr && expr_contains_index(*s.expr)) return true;
  if (s.init && expr_contains_index(*s.init)) return true;
  if (s.for_init && stmt_contains_index(*s.for_init)) return true;
  for (const StmtPtr& child : s.body)
    if (stmt_contains_index(*child)) return true;
  for (const StmtPtr& child : s.else_body)
    if (stmt_contains_index(*child)) return true;
  return false;
}

bool occurs_in_expr(const Expr& e, const std::string& name) {
  if (e.kind == Expr::Kind::kName && e.name == name) return true;
  if (e.lhs && occurs_in_expr(*e.lhs, name)) return true;
  if (e.rhs && occurs_in_expr(*e.rhs, name)) return true;
  if (e.callee && occurs_in_expr(*e.callee, name)) return true;
  for (const ExprPtr& arg : e.args)
    if (occurs_in_expr(*arg, name)) return true;
  return false;
}

int count_occurrences_expr(const Expr& e, const std::string& name) {
  int n = e.kind == Expr::Kind::kName && e.name == name ? 1 : 0;
  if (e.lhs) n += count_occurrences_expr(*e.lhs, name);
  if (e.rhs) n += count_occurrences_expr(*e.rhs, name);
  if (e.callee) n += count_occurrences_expr(*e.callee, name);
  for (const ExprPtr& arg : e.args) n += count_occurrences_expr(*arg, name);
  return n;
}

int count_occurrences_stmt(const Stmt& s, const std::string& name) {
  int n = s.kind == Stmt::Kind::kVarDecl && s.decl_name == name ? 1 : 0;
  if (s.expr) n += count_occurrences_expr(*s.expr, name);
  if (s.init) n += count_occurrences_expr(*s.init, name);
  if (s.for_init) n += count_occurrences_stmt(*s.for_init, name);
  for (const StmtPtr& child : s.body)
    n += count_occurrences_stmt(*child, name);
  for (const StmtPtr& child : s.else_body)
    n += count_occurrences_stmt(*child, name);
  return n;
}

int count_occurrences(const std::vector<StmtPtr>& body,
                      const std::string& name) {
  int n = 0;
  for (const StmtPtr& stmt : body) n += count_occurrences_stmt(*stmt, name);
  return n;
}

/// The single statement a loop body reduces to (unwrapping redundant
/// blocks), or null when the body has several statements.
const Stmt* single_stmt(const std::vector<StmtPtr>& body) {
  if (body.size() != 1) return nullptr;
  const Stmt* s = body.front().get();
  while (s->kind == Stmt::Kind::kBlock) {
    if (s->body.size() != 1) return nullptr;
    s = s->body.front().get();
  }
  return s;
}

void stamp_expr(Expr& e, Span span) {
  e.line = span.line;
  e.column = span.column;
  if (e.lhs) stamp_expr(*e.lhs, span);
  if (e.rhs) stamp_expr(*e.rhs, span);
  if (e.callee) stamp_expr(*e.callee, span);
  for (const ExprPtr& arg : e.args) stamp_expr(*arg, span);
}

/// How an index expression relates to the induction variable.
enum class IndexClass {
  kExact,     ///< exactly `i`
  kCarried,   ///< `i + c` / `i - c` / `c + i`: a cross-iteration shift
  kIndirect,  ///< anything else (a[p[i]], a[2*i], a[0])
};

IndexClass classify_index(const Expr& index, const std::string& var) {
  if (index.kind == Expr::Kind::kName && index.name == var)
    return IndexClass::kExact;
  if (index.kind == Expr::Kind::kBinary &&
      (index.name == "+" || index.name == "-")) {
    const bool lhs_var =
        index.lhs->kind == Expr::Kind::kName && index.lhs->name == var;
    const bool rhs_var =
        index.rhs->kind == Expr::Kind::kName && index.rhs->name == var;
    const bool lhs_lit = index.lhs->kind == Expr::Kind::kIntLit;
    const bool rhs_lit = index.rhs->kind == Expr::Kind::kIntLit;
    if ((lhs_var && rhs_lit) || (index.name == "+" && lhs_lit && rhs_var))
      return IndexClass::kCarried;
  }
  return IndexClass::kIndirect;
}

// --- backward liveness of one local after one loop -------------------------

struct Event {
  int local = 0;
  bool is_def = false;
};

void expr_events(const Expr& e, const std::map<std::string, int>& index,
                 std::vector<Event>& out) {
  switch (e.kind) {
    case Expr::Kind::kName: {
      const auto it = index.find(e.name);
      if (it != index.end()) out.push_back({it->second, false});
      break;
    }
    case Expr::Kind::kAssign: {
      expr_events(*e.rhs, index, out);
      if (e.lhs->kind == Expr::Kind::kName) {
        const auto it = index.find(e.lhs->name);
        if (it != index.end()) out.push_back({it->second, true});
      } else {
        // Store-through (a[i] = v): the base stays live, the index is
        // read -- both are uses, nothing is killed.
        expr_events(*e.lhs, index, out);
      }
      break;
    }
    case Expr::Kind::kIndex:
    case Expr::Kind::kBinary:
      expr_events(*e.lhs, index, out);
      expr_events(*e.rhs, index, out);
      break;
    case Expr::Kind::kUnary:
      expr_events(*e.lhs, index, out);
      break;
    case Expr::Kind::kCall:
      expr_events(*e.callee, index, out);
      for (const ExprPtr& arg : e.args) expr_events(*arg, index, out);
      break;
    default:
      break;  // literals, sections
  }
}

/// A function's CFG and backward-liveness solution, built once and
/// queried for every candidate loop in the function (a gen_mult nest
/// alone queries three times).  The CFG holds pointers into the
/// function body, so the cache must be invalidated whenever a rewrite
/// mutates it.
struct FnLiveness {
  Cfg cfg;
  DataflowResult live;
  bool valid = false;

  void invalidate() { valid = false; }

  void build(const Function& fn) {
    cfg = build_cfg(fn);
    const std::size_t n = cfg.num_locals();
    std::vector<BlockTransfer> transfer(cfg.blocks.size());
    for (const BasicBlock& block : cfg.blocks) {
      BitVec gen(n);
      BitVec kill(n);
      for (const CfgAction& action : block.actions) {
        std::vector<Event> events;
        switch (action.kind) {
          case CfgAction::Kind::kDecl:
            if (action.stmt->init != nullptr) {
              expr_events(*action.stmt->init, cfg.local_index, events);
              const auto it = cfg.local_index.find(action.stmt->decl_name);
              if (it != cfg.local_index.end())
                events.push_back({it->second, true});
            }
            break;
          case CfgAction::Kind::kEval:
          case CfgAction::Kind::kReturn:
            if (action.expr != nullptr)
              expr_events(*action.expr, cfg.local_index, events);
            break;
        }
        for (const Event& event : events) {
          if (event.is_def)
            kill.set(static_cast<std::size_t>(event.local));
          else if (!kill.test(static_cast<std::size_t>(event.local)))
            gen.set(static_cast<std::size_t>(event.local));
        }
      }
      transfer[block.id].gen = std::move(gen);
      transfer[block.id].kill = std::move(kill);
    }
    live = solve_dataflow(cfg, transfer, Direction::kBackward, Meet::kUnion,
                          BitVec(n));
    valid = true;
  }

  /// True when `var` may be read after `loop` exits.  Conservatively
  /// true when the loop's exit edge cannot be located.
  bool live_after_loop(const Function& fn, const Stmt& loop,
                       const std::string& var) {
    if (!valid) build(fn);
    const auto vit = cfg.local_index.find(var);
    if (vit == cfg.local_index.end()) return true;
    // The loop's condition block ends the iteration: its second
    // successor is the code after the loop.
    int cond_block = -1;
    for (const BasicBlock& block : cfg.blocks)
      for (const CfgAction& action : block.actions)
        if (action.kind == CfgAction::Kind::kEval && action.stmt == &loop &&
            action.expr == loop.expr.get())
          cond_block = block.id;
    if (cond_block < 0) return true;
    const std::vector<int>& succs = cfg.blocks[cond_block].succs;
    if (succs.size() < 2) return true;
    return live.in[succs[1]].test(vit->second);
  }
};

// --- canonical skeleton snippets -------------------------------------------

// The paper's section 2.4 bodies, spliced into programs that do not
// already define the skeletons.  Nested type arguments are written
// `array <array <E> >`-style only for symmetry with the examples; the
// lexer treats every '>' as its own token.

std::string map_def_text(const std::string& name) {
  return "void " + name +
         " ($t2 map_f ($t1, Index), array <$t1> a, array <$t2> b) {\n"
         "  int i;\n"
         "  for (i = part_lower(a); i < part_upper(a); i = i + 1)\n"
         "    b[i] = map_f(a[i], mk_index(i));\n"
         "}\n";
}

std::string fold_def_text(const std::string& name) {
  return "$t2 " + name +
         " ($t2 conv_f ($t1, Index), $t2 fold_f ($t2, $t2), array <$t1> a) "
         "{\n"
         "  $t2 acc = conv_f(a[part_lower(a)], mk_index(part_lower(a)));\n"
         "  int i;\n"
         "  for (i = part_lower(a) + 1; i < part_upper(a); i = i + 1)\n"
         "    acc = fold_f(acc, conv_f(a[i], mk_index(i)));\n"
         "  return acc;\n"
         "}\n";
}

std::string gen_mult_def_text(const std::string& name,
                              const std::string& elem) {
  return "void " + name + " (array <array <" + elem +
         "> > a, array <array <" + elem + "> > b, " + elem + " add_f (" +
         elem + ", " + elem + "), " + elem + " mult_f (" + elem + ", " +
         elem + "), array <array <" + elem + "> > c) {\n"
         "  int i;\n"
         "  int j;\n"
         "  int k;\n"
         "  for (i = 0; i < len(a); i = i + 1) {\n"
         "    for (j = 0; j < len(b); j = j + 1) {\n"
         "      for (k = 0; k < len(b); k = k + 1)\n"
         "        c[i][j] = add_f(c[i][j], mult_f(a[i][k], b[k][j]));\n"
         "    }\n"
         "  }\n"
         "}\n";
}

// --- the pass --------------------------------------------------------------

class Skeletonizer {
 public:
  Skeletonizer(Program& program, DiagnosticSink& sink, bool rewrite)
      : program_(program), sink_(sink), rewrite_(rewrite), oracle_(program) {}

  SkeletonizeCounters run() {
    for (std::size_t i = 0; i < program_.functions.size(); ++i) {
      Function& fn = program_.functions[i];
      if (fn.is_prototype || fn.is_hof() || fn.is_polymorphic()) continue;
      fn_ = &fn;
      liveness_.invalidate();
      process_stmts(fn.body);
    }
    for (Function& fn : synthesized_)
      program_.functions.push_back(std::move(fn));
    return counters_;
  }

 private:
  /// What the caller of try_loop should do next.
  enum class Action {
    kReplaced,   ///< stmts[idx] was replaced in place
    kNoRecurse,  ///< leave the loop alone, do not examine nested loops
    kRecurse,    ///< leave the loop alone, examine nested loops
  };

  /// Per-loop diagnostic context.  `relevant` gates rejection notes:
  /// loops that never touch an array element are silently counted, so
  /// ordinary counting loops do not drown the lint output.
  struct LoopDiag {
    Span span;
    std::string prefix;  ///< "loop over 'i'" / "loop nest over 'i', ..."
    bool relevant = false;
  };

  Action reject(const LoopDiag& d, int SkeletonizeCounters::*counter,
                std::string message, std::string hint = "",
                Action action = Action::kRecurse) {
    ++(counters_.*counter);
    if (d.relevant)
      sink_.report(Severity::kNote, "skeletonize", d.span,
                   d.prefix + " not skeletonized: " + std::move(message),
                   std::move(hint));
    return action;
  }

  void note_recognized(const LoopDiag& d, const std::string& call,
                       const std::string& why, const std::string& hint = "") {
    sink_.report(Severity::kNote, "skeletonize", d.span,
                 std::string(rewrite_ ? "skeletonized " : "can skeletonize ") +
                     d.prefix + " into '" + call + "': " + why,
                 hint);
  }

  void process_stmts(std::vector<StmtPtr>& stmts) {
    for (std::size_t i = 0; i < stmts.size(); ++i) {
      Stmt& stmt = *stmts[i];
      if (stmt.kind == Stmt::Kind::kFor) {
        const Action action = try_loop(stmts, i);
        if (action == Action::kReplaced || action == Action::kNoRecurse)
          continue;
      }
      process_stmts(stmt.body);
      process_stmts(stmt.else_body);
    }
  }

  Action try_loop(std::vector<StmtPtr>& stmts, std::size_t idx) {
    Stmt& loop = *stmts[idx];
    ++counters_.loops_seen;
    const m::LoopHeader header = m::match_loop_header(loop);
    if (!header.canonical) {
      // Not a counted loop at all -- no note: the programmer was not
      // trying to write a skeleton body.
      ++counters_.rejected_header;
      return Action::kRecurse;
    }

    const Stmt* body = single_stmt(loop.body);
    if (body != nullptr && body->kind == Stmt::Kind::kFor) {
      const Stmt* inner = single_stmt(body->body);
      if (inner != nullptr && inner->kind == Stmt::Kind::kFor)
        return try_gen_mult(stmts, idx, header, *body, *inner);
      LoopDiag d{loop.span(), "loop over '" + header.var + "'",
                 stmt_contains_index(loop)};
      return reject(d, &SkeletonizeCounters::rejected_shape,
                    "the body is a nested loop, not a single update "
                    "statement");
    }

    LoopDiag d{loop.span(), "loop over '" + header.var + "'",
               stmt_contains_index(loop)};
    if (header.stride != 1)
      return reject(d, &SkeletonizeCounters::rejected_stride,
                    "the loop advances '" + header.var + "' by " +
                        std::to_string(header.stride) + ", not 1",
                    "only unit-stride loops map onto the block-distributed "
                    "skeletons");
    if (body == nullptr || body->kind != Stmt::Kind::kExpr ||
        body->expr == nullptr || body->expr->kind != Expr::Kind::kAssign)
      return reject(d, &SkeletonizeCounters::rejected_shape,
                    "the body is not a single update statement");
    const Expr& update = *body->expr;
    if (update.lhs->kind == Expr::Kind::kIndex)
      return try_map(stmts, idx, header, update, d);
    if (update.lhs->kind == Expr::Kind::kName)
      return try_fold(stmts, idx, header, update, d);
    return reject(d, &SkeletonizeCounters::rejected_shape,
                  "the update target is neither a variable nor an indexed "
                  "element");
  }

  // --- element-expression classification -----------------------------------

  struct ElemScan {
    ElemScan(std::string var, const std::string* acc)
        : var(std::move(var)), acc(acc) {}
    std::string var;
    const std::string* acc;  ///< fold accumulator (null for map)
    std::string source;      ///< the one array the expression reads
    TypePtr source_type;     ///< its element type
    std::vector<std::string> scalars;  ///< free scalars, first-use order
    std::vector<TypePtr> scalar_types;
    std::set<std::string> scalar_set;
  };

  bool scan_elem(const Expr& e, ElemScan& s, const LoopDiag& d) {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
      case Expr::Kind::kFloatLit:
        return true;
      case Expr::Kind::kName: {
        if (e.name == s.var) {
          reject(d, &SkeletonizeCounters::rejected_induction,
                 "the element computation reads the induction variable '" +
                     s.var + "' at " + spell(e.span()));
          return false;
        }
        if (s.acc != nullptr && e.name == *s.acc) {
          reject(d, &SkeletonizeCounters::rejected_accumulator,
                 "reads the accumulator '" + *s.acc +
                     "' inside the element computation (" + spell(e.span()) +
                     ")");
          return false;
        }
        if (e.type != nullptr && (e.type->kind == Type::Kind::kInt ||
                                  e.type->kind == Type::Kind::kFloat)) {
          if (s.scalar_set.insert(e.name).second) {
            s.scalars.push_back(e.name);
            s.scalar_types.push_back(e.type);
          }
          return true;
        }
        if (e.type != nullptr && e.type->kind == Type::Kind::kFunction) {
          reject(d, &SkeletonizeCounters::rejected_shape,
                 "reads the function '" + e.name + "' as a value (" +
                     spell(e.span()) + ")");
          return false;
        }
        reject(d, &SkeletonizeCounters::rejected_shape,
               "reads the whole array '" + e.name + "' (" + spell(e.span()) +
                   "); only '" + e.name + "[" + s.var +
                   "]' element reads are recognized");
        return false;
      }
      case Expr::Kind::kIndex: {
        if (e.lhs->kind != Expr::Kind::kName) {
          reject(d, &SkeletonizeCounters::rejected_shape,
                 "indexes '" + spell_expr(*e.lhs) + "' (" + spell(e.span()) +
                     "), not a named array");
          return false;
        }
        switch (classify_index(*e.rhs, s.var)) {
          case IndexClass::kExact:
            break;
          case IndexClass::kCarried:
            reject(d, &SkeletonizeCounters::rejected_carried,
                   "reads '" + spell_expr(e) + "' across iterations (" +
                       spell(e.span()) + ")",
                   "cross-iteration dependences cannot run as a parallel "
                   "skeleton");
            return false;
          case IndexClass::kIndirect:
            reject(d, &SkeletonizeCounters::rejected_indirect,
                   "reads '" + spell_expr(e) +
                       "', whose index is not the induction variable '" +
                       s.var + "' (" + spell(e.span()) + ")");
            return false;
        }
        const std::string& base = e.lhs->name;
        if (e.type == nullptr || (e.type->kind != Type::Kind::kInt &&
                                  e.type->kind != Type::Kind::kFloat)) {
          reject(d, &SkeletonizeCounters::rejected_shape,
                 "the elements of '" + base + "' are not int or float");
          return false;
        }
        if (s.source.empty()) {
          s.source = base;
          s.source_type = e.type;
        } else if (s.source != base) {
          reject(d, &SkeletonizeCounters::rejected_shape,
                 "reads two arrays ('" + s.source + "' and '" + base +
                     "'); an element-wise update reads one source",
                 "zip-style bodies over two sources are not yet recognized");
          return false;
        }
        return true;
      }
      case Expr::Kind::kCall: {
        if (e.callee->kind != Expr::Kind::kName) {
          reject(d, &SkeletonizeCounters::rejected_shape,
                 "calls a computed function (" + spell(e.span()) + ")");
          return false;
        }
        const std::string& callee = e.callee->name;
        if (callee == "len" || callee == "part_lower" ||
            callee == "part_upper" || callee == "mk_index") {
          reject(d, &SkeletonizeCounters::rejected_shape,
                 "calls the skeleton builtin '" + callee +
                     "' inside the element computation (" + spell(e.span()) +
                     ")",
                 "hoist the loop-invariant call into a variable before the "
                 "loop");
          return false;
        }
        if (impure_builtin(callee)) {
          reject(d, &SkeletonizeCounters::rejected_impure,
                 "calls the impure builtin '" + callee + "' at " +
                     spell(e.span()));
          return false;
        }
        const Function* fn = program_.find_function(callee);
        if (fn == nullptr || fn->is_prototype) {
          reject(d, &SkeletonizeCounters::rejected_impure,
                 "calls '" + callee + "' (" + spell(e.span()) +
                     "), which has no definition and cannot be proven pure");
          return false;
        }
        if (fn->is_hof()) {
          reject(d, &SkeletonizeCounters::rejected_shape,
                 "calls the higher-order function '" + callee + "' (" +
                     spell(e.span()) + ")");
          return false;
        }
        if (e.args.size() != fn->params.size()) {
          reject(d, &SkeletonizeCounters::rejected_shape,
                 "partially applies '" + callee + "' (" + spell(e.span()) +
                     ")");
          return false;
        }
        std::string why;
        if (!oracle_.pure(callee, &why)) {
          reject(d, &SkeletonizeCounters::rejected_impure,
                 "calls '" + callee + "', which " + why);
          return false;
        }
        for (const ExprPtr& arg : e.args)
          if (!scan_elem(*arg, s, d)) return false;
        return true;
      }
      case Expr::Kind::kBinary:
        return scan_elem(*e.lhs, s, d) && scan_elem(*e.rhs, s, d);
      case Expr::Kind::kUnary:
        return scan_elem(*e.lhs, s, d);
      case Expr::Kind::kAssign:
        reject(d, &SkeletonizeCounters::rejected_shape,
               "assigns inside the element computation (" + spell(e.span()) +
                   ")");
        return false;
      case Expr::Kind::kSection:
        reject(d, &SkeletonizeCounters::rejected_shape,
               "passes an operator section inside the element computation (" +
                   spell(e.span()) + ")");
        return false;
    }
    return true;
  }

  // --- bounds --------------------------------------------------------------

  enum class BoundCheck { kOk, kNotBoundCall, kFailed };

  /// Verifies that `e` is `<builtin>(array)` for one of the builtin
  /// `names` and exactly the given `array`.  The bound is pinned to
  /// the one array the synthesized skeleton iterates (`role` says
  /// which, for the note): a bound ranging over any *other* array --
  /// even one the body touches -- would let the rewrite change the
  /// trip count whenever the lengths differ, breaking bit-identity.
  BoundCheck check_bound_call(const Expr& e,
                              const std::vector<std::string>& names,
                              const std::string& array,
                              const std::string& role, const LoopDiag& d) {
    if (e.kind != Expr::Kind::kCall || e.callee->kind != Expr::Kind::kName)
      return BoundCheck::kNotBoundCall;
    const std::string& callee = e.callee->name;
    if (std::find(names.begin(), names.end(), callee) == names.end())
      return BoundCheck::kNotBoundCall;
    const Function* fn = program_.find_function(callee);
    if (fn == nullptr || !fn->is_prototype) {
      reject(d, &SkeletonizeCounters::rejected_bounds,
             "the bound calls '" + callee +
                 "', which is a defined function here, not the skeleton "
                 "builtin");
      return BoundCheck::kFailed;
    }
    if (e.args.size() != 1 || e.args[0]->kind != Expr::Kind::kName) {
      reject(d, &SkeletonizeCounters::rejected_bounds,
             "the bound '" + spell_expr(e) + "' does not name an array");
      return BoundCheck::kFailed;
    }
    if (e.args[0]->name != array) {
      reject(d, &SkeletonizeCounters::rejected_bounds,
             "the bound '" + spell_expr(e) + "' does not range over '" +
                 array + "', the " + role,
             "the rewrite would change the trip count whenever the arrays "
             "differ in length");
      return BoundCheck::kFailed;
    }
    return BoundCheck::kOk;
  }

  bool check_bounds(const Expr& lo, const Expr& hi, const std::string& array,
                    const std::string& role, const LoopDiag& d) {
    if (!(lo.kind == Expr::Kind::kIntLit && lo.int_value == 0)) {
      switch (check_bound_call(lo, {"part_lower"}, array, role, d)) {
        case BoundCheck::kFailed:
          return false;
        case BoundCheck::kNotBoundCall:
          reject(d, &SkeletonizeCounters::rejected_bounds,
                 "the lower bound '" + spell_expr(lo) +
                     "' does not start the array (expected 0 or part_lower)");
          return false;
        case BoundCheck::kOk:
          break;
      }
    }
    switch (check_bound_call(hi, {"len", "part_upper"}, array, role, d)) {
      case BoundCheck::kFailed:
        return false;
      case BoundCheck::kNotBoundCall:
        reject(d, &SkeletonizeCounters::rejected_bounds,
               "the upper bound '" + spell_expr(hi) +
                   "' does not span the array (expected len or part_upper)");
        return false;
      case BoundCheck::kOk:
        break;
    }
    return true;
  }

  /// The canonical map/fold bodies call mk_index/part_lower/part_upper;
  /// a program that redefines one of those names as a regular function
  /// would capture the calls, so recognition refuses.
  bool builtins_available(const LoopDiag& d) {
    for (const char* name : {"mk_index", "part_lower", "part_upper"}) {
      const Function* fn = program_.find_function(name);
      if (fn == nullptr) continue;  // the rewrite splices the prototype
      if (!fn->is_prototype || fn->params.size() != 1) {
        reject(d, &SkeletonizeCounters::rejected_shape,
               std::string("'") + name +
                   "' is declared as a regular function here, shadowing the "
                   "skeleton builtin the rewrite needs");
        return false;
      }
    }
    return true;
  }

  // --- induction-variable removal ------------------------------------------

  /// The rewrite deletes `enclosing` (and with it the step assignment
  /// and -- in declaration form -- the declaration of `var`), so `var`
  /// must be dead after the loop and, when declared by the loop, never
  /// mentioned outside it.
  bool check_induction(const Stmt& enclosing, const Stmt& declaring,
                       const std::string& var, const LoopDiag& d) {
    if (liveness_.live_after_loop(*fn_, enclosing, var)) {
      reject(d, &SkeletonizeCounters::rejected_induction,
             "the induction variable '" + var +
                 "' is still live after the loop",
             "the rewrite deletes the counting loop, so '" + var +
                 "' would be left unassigned");
      return false;
    }
    if (declaring.for_init != nullptr &&
        declaring.for_init->kind == Stmt::Kind::kVarDecl) {
      const int total = count_occurrences(fn_->body, var);
      const int inside = count_occurrences_stmt(enclosing, var);
      if (total != inside) {
        reject(d, &SkeletonizeCounters::rejected_induction,
               "the induction variable '" + var +
                   "' is declared by the loop but used outside it");
        return false;
      }
    }
    return true;
  }

  // --- map -----------------------------------------------------------------

  Action try_map(std::vector<StmtPtr>& stmts, std::size_t idx,
                 const m::LoopHeader& header, const Expr& update,
                 const LoopDiag& d) {
    Stmt& loop = *stmts[idx];
    const Expr& store = *update.lhs;  // kIndex
    if (store.lhs->kind != Expr::Kind::kName)
      return reject(d, &SkeletonizeCounters::rejected_shape,
                    "stores through '" + spell_expr(store) + "' (" +
                        spell(store.span()) + "), not a named array");
    const std::string dst = store.lhs->name;
    switch (classify_index(*store.rhs, header.var)) {
      case IndexClass::kExact:
        break;
      case IndexClass::kCarried:
        return reject(d, &SkeletonizeCounters::rejected_carried,
                      "writes '" + spell_expr(store) +
                          "' across iterations (" + spell(store.span()) + ")",
                      "cross-iteration dependences cannot run as a parallel "
                      "skeleton");
      case IndexClass::kIndirect:
        return reject(d, &SkeletonizeCounters::rejected_indirect,
                      "writes '" + spell_expr(store) +
                          "', whose index is not the induction variable '" +
                          header.var + "' (" + spell(store.span()) + ")");
    }
    if (store.type == nullptr || (store.type->kind != Type::Kind::kInt &&
                                  store.type->kind != Type::Kind::kFloat))
      return reject(d, &SkeletonizeCounters::rejected_shape,
                    "the elements of '" + dst + "' are not int or float");

    ElemScan scan(header.var, nullptr);
    if (!scan_elem(*update.rhs, scan, d)) return Action::kRecurse;
    // A constant fill (b[i] = 0) reads no source; the skeleton then
    // maps the destination onto itself.
    const std::string src = scan.source.empty() ? dst : scan.source;
    const TypePtr elem_type =
        scan.source.empty() ? store.type : scan.source_type;
    // The synthesized array_map iterates part_lower(src)..part_upper
    // (src), so the loop must be bounded by `src` itself: a bound over
    // the destination would silently change which elements of `dst`
    // are written when the two lengths differ.
    if (!check_bounds(*header.lo, *header.hi, src,
                      "array the skeleton traverses", d))
      return Action::kRecurse;
    if (!builtins_available(d)) return Action::kRecurse;
    if (!check_induction(loop, loop, header.var, d)) return Action::kRecurse;

    ++counters_.recognized_map;
    const std::string skel = map_skeleton_name();
    const std::string stage = fresh_stage_name("__skel_map_", &map_fn_id_);
    const std::string call_text = skel + "(" + stage_call_text(stage, scan) +
                                  ", " + src + ", " + dst + ")";
    note_recognized(d, call_text, "the body is a pure element-wise update");
    if (!rewrite_) return Action::kNoRecurse;

    synthesize_stage(stage, scan, elem_type, store.type, *update.rhs,
                     loop.span());
    std::vector<ExprPtr> args;
    args.push_back(stage_ref(stage, scan));
    args.push_back(make_name(src));
    args.push_back(make_name(dst));
    ExprPtr call = make_call(make_name(skel), std::move(args));
    stamp_expr(*call, loop.span());
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kExpr;
    stmt->expr = std::move(call);
    stmt->line = loop.line;
    stmt->column = loop.column;
    stmts[idx] = std::move(stmt);
    liveness_.invalidate();
    return Action::kReplaced;
  }

  // --- fold ----------------------------------------------------------------

  Action try_fold(std::vector<StmtPtr>& stmts, std::size_t idx,
                  const m::LoopHeader& header, const Expr& update,
                  const LoopDiag& d) {
    Stmt& loop = *stmts[idx];
    const std::string acc = update.lhs->name;
    if (acc == header.var)
      return reject(d, &SkeletonizeCounters::rejected_induction,
                    "the loop writes its own induction variable '" + acc +
                        "' in the body");
    const TypePtr acc_type = update.lhs->type;
    if (acc_type != nullptr && acc_type->kind == Type::Kind::kFloat)
      return reject(d, &SkeletonizeCounters::rejected_shape,
                    "floating-point accumulation is not skeletonized: "
                    "seeding the fold from the identity can change result "
                    "bits");
    if (acc_type == nullptr || acc_type->kind != Type::Kind::kInt)
      return reject(d, &SkeletonizeCounters::rejected_shape,
                    "the accumulator '" + acc + "' is not an int");

    // `acc = acc op EXPR` (either operand order) with op in {+, *}.
    const Expr& rhs = *update.rhs;
    const Expr* elem_expr = nullptr;
    std::string op;
    if (rhs.kind == Expr::Kind::kBinary &&
        (rhs.name == "+" || rhs.name == "*")) {
      if (rhs.lhs->kind == Expr::Kind::kName && rhs.lhs->name == acc) {
        op = rhs.name;
        elem_expr = rhs.rhs.get();
      } else if (rhs.rhs->kind == Expr::Kind::kName && rhs.rhs->name == acc) {
        op = rhs.name;
        elem_expr = rhs.lhs.get();
      }
    }
    if (elem_expr == nullptr) {
      if (rhs.kind == Expr::Kind::kBinary &&
          (rhs.name == "-" || rhs.name == "/") &&
          rhs.lhs->kind == Expr::Kind::kName && rhs.lhs->name == acc)
        return reject(d, &SkeletonizeCounters::rejected_accumulator,
                      "'" + rhs.name +
                          "' does not form an associative accumulation");
      if (occurs_in_expr(rhs, acc))
        return reject(d, &SkeletonizeCounters::rejected_accumulator,
                      "the update is not of the form '" + acc + " = " + acc +
                          " (+) e'");
      return reject(d, &SkeletonizeCounters::rejected_shape,
                    "the loop overwrites '" + acc + "' without accumulating");
    }

    ElemScan scan(header.var, &acc);
    if (!scan_elem(*elem_expr, scan, d)) return Action::kRecurse;
    if (scan.source.empty())
      return reject(d, &SkeletonizeCounters::rejected_shape,
                    "the accumulation does not read an array element");
    if (!check_bounds(*header.lo, *header.hi, scan.source,
                      "array the skeleton traverses", d))
      return Action::kRecurse;
    if (!builtins_available(d)) return Action::kRecurse;

    // The canonical fold seeds from the first element, so the
    // sequential seed must be the operator's identity for the results
    // to agree.
    const long identity = op == "+" ? 0 : 1;
    // Scan back over bare declarations of *other* locals (the
    // idiomatic `int total = 0; int i; for (...)` shape puts the
    // induction variable's declaration between seed and loop).
    size_t seed_idx = idx;
    while (seed_idx > 0 && stmts[seed_idx - 1]->kind == Stmt::Kind::kVarDecl &&
           stmts[seed_idx - 1]->init == nullptr &&
           stmts[seed_idx - 1]->decl_name != acc)
      --seed_idx;
    const Stmt* seed = seed_idx > 0 ? stmts[seed_idx - 1].get() : nullptr;
    bool seed_ok = false;
    if (seed != nullptr) {
      if (seed->kind == Stmt::Kind::kVarDecl && seed->decl_name == acc &&
          seed->init != nullptr && seed->init->kind == Expr::Kind::kIntLit &&
          seed->init->int_value == identity)
        seed_ok = true;
      if (seed->kind == Stmt::Kind::kExpr && seed->expr != nullptr &&
          seed->expr->kind == Expr::Kind::kAssign &&
          seed->expr->lhs->kind == Expr::Kind::kName &&
          seed->expr->lhs->name == acc &&
          seed->expr->rhs->kind == Expr::Kind::kIntLit &&
          seed->expr->rhs->int_value == identity)
        seed_ok = true;
    }
    if (!seed_ok)
      return reject(d, &SkeletonizeCounters::rejected_accumulator,
                    "'" + acc + "' is not initialised to " +
                        std::to_string(identity) + ", the identity of '" +
                        op + "', immediately before the loop",
                    "write '" + acc + " = " + std::to_string(identity) +
                        ";' directly before the loop");
    if (!check_induction(loop, loop, header.var, d)) return Action::kRecurse;

    ++counters_.recognized_fold;
    const std::string skel = fold_skeleton_name();
    const std::string stage = fresh_stage_name("__skel_fold_", &fold_fn_id_);
    const std::string call_text = acc + " = " + skel + "(" +
                                  stage_call_text(stage, scan) + ", (" + op +
                                  "), " + scan.source + ")";
    note_recognized(d, call_text,
                    "the body is a pure (" + op +
                        ")-accumulation from the identity",
                    "the call is guarded: an empty partition keeps the seed, "
                    "exactly as the loop would");
    if (!rewrite_) return Action::kNoRecurse;

    // The canonical fold seeds from a[part_lower(a)] unconditionally,
    // so the bare call would read out of bounds exactly where the
    // sequential loop runs zero times.  The rewrite therefore keeps
    // the identity seed and guards the call on a non-empty partition:
    // `if (part_lower(a) < part_upper(a)) acc = fold(...);`.
    synthesize_stage(stage, scan, scan.source_type, acc_type, *elem_expr,
                     loop.span());
    std::vector<ExprPtr> args;
    args.push_back(stage_ref(stage, scan));
    args.push_back(make_section(op));
    args.push_back(make_name(scan.source));
    ExprPtr call = make_call(make_name(skel), std::move(args));
    ExprPtr update_expr = make_assign(make_name(acc), std::move(call));

    std::vector<ExprPtr> lo_args;
    lo_args.push_back(make_name(scan.source));
    std::vector<ExprPtr> hi_args;
    hi_args.push_back(make_name(scan.source));
    ExprPtr cond =
        make_binary("<", make_call(make_name("part_lower"), std::move(lo_args)),
                    make_call(make_name("part_upper"), std::move(hi_args)));
    stamp_expr(*cond, loop.span());
    stamp_expr(*update_expr, loop.span());

    auto call_stmt = std::make_unique<Stmt>();
    call_stmt->kind = Stmt::Kind::kExpr;
    call_stmt->expr = std::move(update_expr);
    call_stmt->line = loop.line;
    call_stmt->column = loop.column;
    auto guard = std::make_unique<Stmt>();
    guard->kind = Stmt::Kind::kIf;
    guard->expr = std::move(cond);
    guard->body.push_back(std::move(call_stmt));
    guard->line = loop.line;
    guard->column = loop.column;
    stmts[idx] = std::move(guard);
    liveness_.invalidate();
    return Action::kReplaced;
  }

  // --- gen_mult ------------------------------------------------------------

  Action try_gen_mult(std::vector<StmtPtr>& stmts, std::size_t idx,
                      const m::LoopHeader& h1, const Stmt& mid,
                      const Stmt& inner) {
    Stmt& loop = *stmts[idx];
    const m::LoopHeader h2 = m::match_loop_header(mid);
    const m::LoopHeader h3 = m::match_loop_header(inner);
    if (!h2.canonical || !h3.canonical) {
      // Examine the inner loops on their own (kRecurse).
      LoopDiag d{loop.span(), "loop over '" + h1.var + "'",
                 stmt_contains_index(loop)};
      return reject(d, &SkeletonizeCounters::rejected_shape,
                    "the body is a nested loop, not a single update "
                    "statement");
    }
    counters_.loops_seen += 2;
    LoopDiag d{loop.span(),
               "loop nest over '" + h1.var + "', '" + h2.var + "', '" +
                   h3.var + "'",
               stmt_contains_index(loop)};
    for (const m::LoopHeader* h : {&h1, &h2, &h3})
      if (h->stride != 1)
        return reject(d, &SkeletonizeCounters::rejected_stride,
                      "the loop advances '" + h->var + "' by " +
                          std::to_string(h->stride) + ", not 1",
                      "only unit-stride loops map onto the block-distributed "
                      "skeletons",
                      Action::kNoRecurse);
    if (h1.var == h2.var || h1.var == h3.var || h2.var == h3.var)
      return reject(d, &SkeletonizeCounters::rejected_shape,
                    "the nest reuses an induction variable", "",
                    Action::kNoRecurse);
    const Stmt* body = single_stmt(inner.body);
    if (body == nullptr || body->kind != Stmt::Kind::kExpr ||
        body->expr == nullptr || body->expr->kind != Expr::Kind::kAssign)
      return reject(d, &SkeletonizeCounters::rejected_shape,
                    "the innermost statement is not a single update",
                    "", Action::kNoRecurse);

    // c[i][j] = c[i][j] (+) a[i][k] (*) b[k][j], with named binary
    // functions accepted for (+)/(*) and commuted operand orders for
    // the builtin operators.
    const m::Pattern cij = m::indexed(
        m::indexed(m::name_capture("c"), m::name(h1.var)), m::name(h2.var));
    const m::Pattern aik = m::indexed(
        m::indexed(m::name_capture("a"), m::name(h1.var)), m::name(h3.var));
    const m::Pattern bkj = m::indexed(
        m::indexed(m::name_capture("b"), m::name(h3.var)), m::name(h2.var));
    const m::Pattern prod =
        m::one_of({m::binary("*", aik, bkj), m::binary("*", bkj, aik),
                   m::call(m::name_capture("mult"), {aik, bkj})});
    const m::Pattern sum =
        m::one_of({m::binary("+", cij, prod), m::binary("+", prod, cij),
                   m::call(m::name_capture("add"), {cij, prod})});
    const m::Pattern pattern = m::assign(cij, sum);
    m::MatchContext ctx;
    if (!pattern->match(*body->expr, ctx))
      return reject(d, &SkeletonizeCounters::rejected_shape,
                    "the innermost statement is not the matrix-product "
                    "update 'c[i][j] = c[i][j] + a[i][k] * b[k][j]'",
                    "", Action::kNoRecurse);
    const std::string c = ctx.get("c")->name;
    const std::string a = ctx.get("a")->name;
    const std::string b = ctx.get("b")->name;
    if (c == a || c == b)
      return reject(d, &SkeletonizeCounters::rejected_shape,
                    "the product overwrites its own input '" + c + "'", "",
                    Action::kNoRecurse);
    const TypePtr elem_type = body->expr->lhs->type;
    if (elem_type == nullptr || (elem_type->kind != Type::Kind::kInt &&
                                 elem_type->kind != Type::Kind::kFloat))
      return reject(d, &SkeletonizeCounters::rejected_shape,
                    "the elements of '" + c + "' are not int or float", "",
                    Action::kNoRecurse);

    // Named (+)/(*) customizers must be defined, binary and pure.
    for (const char* slot : {"add", "mult"}) {
      const Expr* named = ctx.get(slot);
      if (named == nullptr) continue;
      const Function* fn = program_.find_function(named->name);
      if (fn == nullptr || fn->is_prototype)
        return reject(d, &SkeletonizeCounters::rejected_impure,
                      "calls '" + named->name +
                          "' (" + spell(named->span()) +
                          "), which has no definition and cannot be proven "
                          "pure",
                      "", Action::kNoRecurse);
      if (fn->is_hof() || fn->params.size() != 2)
        return reject(d, &SkeletonizeCounters::rejected_shape,
                      "'" + named->name +
                          "' is not a binary first-order function",
                      "", Action::kNoRecurse);
      std::string why;
      if (!oracle_.pure(named->name, &why))
        return reject(d, &SkeletonizeCounters::rejected_impure,
                      "calls '" + named->name + "', which " + why, "",
                      Action::kNoRecurse);
    }

    // Bounds: the spliced skeleton iterates i over len(a) and j, k
    // over len(b), so each source loop is pinned to exactly that
    // bound.  Accepting 'len' of any multiplied array would let a
    // rectangular nest (say j < len(c) with len(c) != len(b)) rewrite
    // into a different trip count.
    const struct {
      const m::LoopHeader* h;
      const std::string* bound;
    } dims[] = {{&h1, &a}, {&h2, &b}, {&h3, &b}};
    for (const auto& dim : dims) {
      const m::LoopHeader* h = dim.h;
      if (!(h->lo->kind == Expr::Kind::kIntLit && h->lo->int_value == 0))
        return reject(d, &SkeletonizeCounters::rejected_bounds,
                      "the lower bound '" + spell_expr(*h->lo) + "' of '" +
                          h->var + "' is not 0",
                      "", Action::kNoRecurse);
      switch (check_bound_call(*h->hi, {"len"}, *dim.bound,
                               "array whose length the skeleton's '" +
                                   h->var + "' dimension spans",
                               d)) {
        case BoundCheck::kOk:
          break;
        case BoundCheck::kFailed:
          return Action::kNoRecurse;
        case BoundCheck::kNotBoundCall:
          return reject(d, &SkeletonizeCounters::rejected_bounds,
                        "the upper bound '" + spell_expr(*h->hi) + "' of '" +
                            h->var + "' is not 'len(" + *dim.bound + ")'",
                        "", Action::kNoRecurse);
      }
    }

    if (!check_induction(loop, loop, h1.var, d) ||
        !check_induction(loop, mid, h2.var, d) ||
        !check_induction(loop, inner, h3.var, d))
      return Action::kNoRecurse;

    ++counters_.recognized_gen_mult;
    const std::string skel =
        gen_mult_skeleton_name(elem_type->kind == Type::Kind::kFloat);
    const std::string add_text =
        ctx.get("add") != nullptr ? ctx.get("add")->name : "(+)";
    const std::string mult_text =
        ctx.get("mult") != nullptr ? ctx.get("mult")->name : "(*)";
    const std::string call_text = skel + "(" + a + ", " + b + ", " +
                                  add_text + ", " + mult_text + ", " + c +
                                  ")";
    note_recognized(d, call_text,
                    "the nest is the paper's generalized matrix product",
                    "the nest's bounds match the skeleton's traversal: '" +
                        h1.var + "' spans len(" + a + "), '" + h2.var +
                        "' and '" + h3.var + "' span len(" + b + ")");
    if (!rewrite_) return Action::kNoRecurse;

    const auto customizer = [&](const char* slot, const char* op) {
      const Expr* named = ctx.get(slot);
      return named != nullptr ? make_name(named->name) : make_section(op);
    };
    std::vector<ExprPtr> args;
    args.push_back(make_name(a));
    args.push_back(make_name(b));
    args.push_back(customizer("add", "+"));
    args.push_back(customizer("mult", "*"));
    args.push_back(make_name(c));
    ExprPtr call = make_call(make_name(skel), std::move(args));
    stamp_expr(*call, loop.span());
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kExpr;
    stmt->expr = std::move(call);
    stmt->line = loop.line;
    stmt->column = loop.column;
    stmts[idx] = std::move(stmt);
    liveness_.invalidate();
    return Action::kReplaced;
  }

  // --- synthesis -----------------------------------------------------------

  /// The customizing-call spelling shared by the note and the rewrite:
  /// `__skel_map_0` or, with free scalars, `__skel_map_0(w, t)`
  /// (partial application at the skeleton call site, paper style).
  static std::string stage_call_text(const std::string& stage,
                                     const ElemScan& scan) {
    if (scan.scalars.empty()) return stage;
    std::string out = stage + "(";
    for (std::size_t i = 0; i < scan.scalars.size(); ++i) {
      if (i > 0) out += ", ";
      out += scan.scalars[i];
    }
    return out + ")";
  }

  static ExprPtr stage_ref(const std::string& stage, const ElemScan& scan) {
    ExprPtr ref = make_name(stage);
    if (scan.scalars.empty()) return ref;
    std::vector<ExprPtr> args;
    for (const std::string& scalar : scan.scalars)
      args.push_back(make_name(scalar));
    return make_call(std::move(ref), std::move(args));
  }

  /// Replaces every read `source[var]` with the element parameter.
  static void replace_source_reads(ExprPtr& e, const std::string& source,
                                   const std::string& var,
                                   const std::string& elem) {
    if (e->kind == Expr::Kind::kIndex && e->lhs->kind == Expr::Kind::kName &&
        e->lhs->name == source && e->rhs->kind == Expr::Kind::kName &&
        e->rhs->name == var) {
      const TypePtr type = e->type;
      e = make_name(elem);
      e->type = type;
      return;
    }
    if (e->lhs) replace_source_reads(e->lhs, source, var, elem);
    if (e->rhs) replace_source_reads(e->rhs, source, var, elem);
    if (e->callee) replace_source_reads(e->callee, source, var, elem);
    for (ExprPtr& arg : e->args) replace_source_reads(arg, source, var, elem);
  }

  /// Builds `ret NAME(scalars..., E elem, Index ix) { return EXPR'; }`
  /// where EXPR' is the element expression with source reads replaced.
  void synthesize_stage(const std::string& name, const ElemScan& scan,
                        const TypePtr& elem_type, const TypePtr& ret_type,
                        const Expr& expr, Span span) {
    std::string elem = "elem";
    while (occurs_in_expr(expr, elem) || scan.scalar_set.count(elem) > 0 ||
           elem == scan.var)
      elem += "_";
    std::string ix = "ix";
    while (occurs_in_expr(expr, ix) || scan.scalar_set.count(ix) > 0 ||
           ix == scan.var || ix == elem)
      ix += "_";

    ExprPtr body = expr.clone();
    replace_source_reads(body, scan.source, scan.var, elem);
    stamp_expr(*body, span);

    Function fn;
    fn.ret = ret_type;
    fn.name = name;
    for (std::size_t i = 0; i < scan.scalars.size(); ++i)
      fn.params.push_back(
          Param{scan.scalar_types[i], scan.scalars[i], span.line, span.column});
    fn.params.push_back(Param{elem_type, elem, span.line, span.column});
    fn.params.push_back(
        Param{Type::make_named("Index"), ix, span.line, span.column});
    auto ret = std::make_unique<Stmt>();
    ret->kind = Stmt::Kind::kReturn;
    ret->expr = std::move(body);
    ret->line = span.line;
    ret->column = span.column;
    fn.body.push_back(std::move(ret));
    fn.line = span.line;
    fn.column = span.column;
    synthesized_.push_back(std::move(fn));
  }

  // --- name claiming and skeleton injection --------------------------------

  bool taken(const std::string& name) const {
    return claimed_names_.count(name) > 0 ||
           program_.find_function(name) != nullptr;
  }

  /// The canonical name when free, `__skel_<canonical>` otherwise.
  /// Claimed in both modes so advisory notes spell the exact call the
  /// rewrite would emit.
  std::string claim_skeleton(const std::string& canonical) {
    std::string name = canonical;
    if (taken(name)) {
      name = "__skel_" + canonical;
      while (taken(name)) name += "_";
    }
    claimed_names_.insert(name);
    return name;
  }

  std::string fresh_stage_name(const char* prefix, int* id) {
    std::string name = prefix + std::to_string((*id)++);
    while (taken(name)) name += "_";
    claimed_names_.insert(name);
    return name;
  }

  void inject_parsed(const std::string& text) {
    Program snippet = parse(text);
    for (Function& fn : snippet.functions)
      synthesized_.push_back(std::move(fn));
  }

  void ensure_builtin(const std::string& name, const std::string& text) {
    if (program_.find_function(name) != nullptr ||
        injected_builtins_.count(name) > 0)
      return;
    injected_builtins_.insert(name);
    inject_parsed(text);
  }

  void ensure_map_fold_builtins() {
    ensure_builtin("mk_index", "Index mk_index (int i);\n");
    ensure_builtin("part_lower", "int part_lower (array <$t> a);\n");
    ensure_builtin("part_upper", "int part_upper (array <$t> a);\n");
  }

  const std::string& map_skeleton_name() {
    if (map_name_.empty()) {
      map_name_ = claim_skeleton("array_map");
      if (rewrite_) {
        ensure_map_fold_builtins();
        inject_parsed(map_def_text(map_name_));
      }
    }
    return map_name_;
  }

  const std::string& fold_skeleton_name() {
    if (fold_name_.empty()) {
      fold_name_ = claim_skeleton("array_fold");
      if (rewrite_) {
        ensure_map_fold_builtins();
        inject_parsed(fold_def_text(fold_name_));
      }
    }
    return fold_name_;
  }

  const std::string& gen_mult_skeleton_name(bool is_float) {
    std::string& name = gen_mult_names_[is_float];
    if (name.empty()) {
      name = claim_skeleton("array_gen_mult");
      if (rewrite_)
        inject_parsed(gen_mult_def_text(name, is_float ? "float" : "int"));
    }
    return name;
  }

  Program& program_;
  DiagnosticSink& sink_;
  const bool rewrite_;
  PurityOracle oracle_;
  SkeletonizeCounters counters_;
  const Function* fn_ = nullptr;
  FnLiveness liveness_;
  std::vector<Function> synthesized_;
  std::set<std::string> claimed_names_;
  std::set<std::string> injected_builtins_;
  int map_fn_id_ = 0;
  int fold_fn_id_ = 0;
  std::string map_name_;
  std::string fold_name_;
  std::map<bool, std::string> gen_mult_names_;
};

}  // namespace

SkeletonizeCounters skeletonize_program(Program& program,
                                        DiagnosticSink& sink) {
  Skeletonizer pass(program, sink, /*rewrite=*/true);
  return pass.run();
}

SkeletonizeCounters analyze_skeletonize(const Program& program,
                                        DiagnosticSink& sink) {
  // Advisory: identical recognition, no mutation (the shared run()
  // only appends synthesized functions in rewrite mode, and none are
  // synthesized when rewrite_ is false).
  Skeletonizer pass(const_cast<Program&>(program), sink, /*rewrite=*/false);
  return pass.run();
}

}  // namespace skil::skilc
