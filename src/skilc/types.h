// The polymorphic type system of Skil (paper section 2.2).
//
// Types are C base types, named (possibly parameterised) types such as
// `array <$t>` or `list <int>`, pointers, function types (from
// higher-order parameter declarations and partial application), and
// type variables `$t`.  Type checking proceeds by unification; the
// resulting substitutions drive the monomorphisation step of the
// instantiation translation (paper section 2.4 / reference [1]).
//
// The paper's restriction is enforced during unification: "type
// variables appearing as components of other data types may not be
// instantiated with types introduced by the pardata construct", and
// pardatas may not be nested.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace skil::skilc {

struct Type;
using TypePtr = std::shared_ptr<const Type>;

struct Type {
  enum class Kind {
    kInt,
    kFloat,
    kVoid,
    kVar,       ///< $t
    kNamed,     ///< array <$t>, list <int>, plain struct names, ...
    kPointer,   ///< T*
    kFunction,  ///< params -> result
  };

  Kind kind = Kind::kInt;
  std::string name;             // kVar: "$t"; kNamed: the type name
  std::vector<TypePtr> params;  // kNamed: type arguments; kFunction: params
  TypePtr result;               // kFunction: result; kPointer: pointee

  static TypePtr make_int();
  static TypePtr make_float();
  static TypePtr make_void();
  static TypePtr make_var(std::string name);
  static TypePtr make_named(std::string name, std::vector<TypePtr> args = {});
  static TypePtr make_pointer(TypePtr pointee);
  static TypePtr make_function(std::vector<TypePtr> params, TypePtr result);
};

/// Structural equality.
bool type_equal(const TypePtr& a, const TypePtr& b);

/// "$t"-style rendering, e.g. "int (float, $t)" for function types.
std::string type_to_string(const TypePtr& type);

/// A substitution from type-variable names to types.
using Subst = std::map<std::string, TypePtr>;

/// Applies a substitution (recursively) to a type.
TypePtr substitute(const TypePtr& type, const Subst& subst);

/// Unifies `a` with `b`, extending `subst`; returns false on mismatch.
/// `pardata_names` holds the type names introduced by pardata
/// constructs, for the paper's instantiation restriction: a type
/// variable occurring *inside* another type may not be bound to a
/// pardata type.
bool unify(const TypePtr& a, const TypePtr& b, Subst& subst,
           const std::set<std::string>& pardata_names, bool at_top = true);

/// Renames every type variable in `type` with a prefix, for making
/// each function's variables distinct before unification.
TypePtr freshen(const TypePtr& type, const std::string& prefix);

/// Collects the names of all type variables in a type.
void collect_vars(const TypePtr& type, std::set<std::string>& out);

/// True when the type contains no type variables.
bool is_monomorphic(const TypePtr& type);

}  // namespace skil::skilc
