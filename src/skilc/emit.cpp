#include "skilc/emit.h"

#include <sstream>

#include "support/error.h"

namespace skil::skilc {

std::string mangle_type(const TypePtr& type) {
  switch (type->kind) {
    case Type::Kind::kInt:
      return "int";
    case Type::Kind::kFloat:
      return "float";
    case Type::Kind::kVoid:
      return "void";
    case Type::Kind::kVar:
      // Unresolved type variables only reach the emitter for generic
      // (non-instantiated) declarations; keep the Skil spelling.
      return type->name;
    case Type::Kind::kPointer:
      return mangle_type(type->result) + " *";
    case Type::Kind::kNamed: {
      std::string name;
      for (const TypePtr& arg : type->params) name += mangle_type(arg);
      return name + type->name;
    }
    case Type::Kind::kFunction:
      // Function types appear only in generic headers.
      return type_to_string(type);
  }
  return "?";
}

namespace {

int precedence(const std::string& op) {
  if (op == "*" || op == "/" || op == "%") return 5;
  if (op == "+" || op == "-") return 4;
  if (op == "<" || op == ">" || op == "<=" || op == ">=") return 3;
  if (op == "==" || op == "!=") return 2;
  if (op == "&&") return 1;
  return 0;  // ||
}

void emit(const Expr& expr, std::ostream& os, int parent_prec);

void emit_operand(const Expr& expr, std::ostream& os, int prec) {
  emit(expr, os, prec);
}

void emit(const Expr& expr, std::ostream& os, int parent_prec) {
  switch (expr.kind) {
    case Expr::Kind::kIntLit:
      os << expr.int_value;
      return;
    case Expr::Kind::kFloatLit:
      os << expr.float_value;
      return;
    case Expr::Kind::kName:
      os << expr.name;
      return;
    case Expr::Kind::kSection:
      os << '(' << expr.name << ')';
      return;
    case Expr::Kind::kUnary:
      os << expr.name;
      emit(*expr.lhs, os, 6);
      return;
    case Expr::Kind::kAssign:
      emit(*expr.lhs, os, 1);
      os << " = ";
      emit(*expr.rhs, os, 0);
      return;
    case Expr::Kind::kIndex:
      emit(*expr.lhs, os, 6);
      os << '[';
      emit(*expr.rhs, os, 0);
      os << ']';
      return;
    case Expr::Kind::kBinary: {
      const int prec = precedence(expr.name);
      const bool parens = prec < parent_prec;
      if (parens) os << '(';
      emit_operand(*expr.lhs, os, prec);
      os << ' ' << expr.name << ' ';
      emit_operand(*expr.rhs, os, prec + 1);
      if (parens) os << ')';
      return;
    }
    case Expr::Kind::kCall: {
      emit(*expr.callee, os, 6);
      os << '(';
      for (std::size_t i = 0; i < expr.args.size(); ++i) {
        if (i) os << ", ";
        emit(*expr.args[i], os, 0);
      }
      os << ')';
      return;
    }
  }
}

/// Renders a declared type: mangled C names (the paper's floatarray)
/// or the Skil spelling array <float> (portable mode).
std::string render_type(const TypePtr& type, bool mangle) {
  return mangle ? mangle_type(type) : type_to_string(type);
}

void emit_stmts(const std::vector<StmtPtr>& stmts, std::ostream& os,
                int indent, bool mangle);

void emit_stmt(const Stmt& stmt, std::ostream& os, int indent, bool mangle) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (stmt.kind) {
    case Stmt::Kind::kBlock:
      os << pad << "{\n";
      emit_stmts(stmt.body, os, indent + 1, mangle);
      os << pad << "}\n";
      return;
    case Stmt::Kind::kExpr:
      os << pad;
      emit(*stmt.expr, os, 0);
      os << ";\n";
      return;
    case Stmt::Kind::kVarDecl:
      os << pad << render_type(stmt.decl_type, mangle) << ' '
         << stmt.decl_name;
      if (stmt.init) {
        os << " = ";
        emit(*stmt.init, os, 0);
      }
      os << ";\n";
      return;
    case Stmt::Kind::kReturn:
      os << pad << "return";
      if (stmt.expr) {
        os << ' ';
        emit(*stmt.expr, os, 0);
      }
      os << ";\n";
      return;
    case Stmt::Kind::kIf:
      os << pad << "if (";
      emit(*stmt.expr, os, 0);
      os << ")\n";
      emit_stmts(stmt.body, os, indent + 1, mangle);
      if (!stmt.else_body.empty()) {
        os << pad << "else\n";
        emit_stmts(stmt.else_body, os, indent + 1, mangle);
      }
      return;
    case Stmt::Kind::kWhile:
      os << pad << "while (";
      emit(*stmt.expr, os, 0);
      os << ")\n";
      emit_stmts(stmt.body, os, indent + 1, mangle);
      return;
    case Stmt::Kind::kFor: {
      os << pad << "for (";
      if (stmt.for_init) {
        // Render the init statement inline, without its ';\n'.
        std::ostringstream init;
        emit_stmt(*stmt.for_init, init, 0, mangle);
        std::string text = init.str();
        while (!text.empty() && (text.back() == '\n' || text.back() == ';'))
          text.pop_back();
        os << text;
      }
      os << "; ";
      if (stmt.expr) emit(*stmt.expr, os, 0);
      os << "; ";
      if (stmt.init) emit(*stmt.init, os, 0);
      os << ")\n";
      emit_stmts(stmt.body, os, indent + 1, mangle);
      return;
    }
  }
}

void emit_stmts(const std::vector<StmtPtr>& stmts, std::ostream& os,
                int indent, bool mangle) {
  for (const StmtPtr& stmt : stmts) emit_stmt(*stmt, os, indent, mangle);
}

std::string emit_param(const Param& param, bool mangle) {
  if (!param.is_function())
    return render_type(param.type, mangle) + " " + param.name;
  std::ostringstream os;
  os << render_type(param.type->result, mangle) << ' ' << param.name << " (";
  for (std::size_t i = 0; i < param.type->params.size(); ++i) {
    if (i) os << ", ";
    os << render_type(param.type->params[i], mangle);
  }
  os << ')';
  return os.str();
}

}  // namespace

std::string emit_expr(const Expr& expr) {
  std::ostringstream os;
  emit(expr, os, 0);
  return os.str();
}

std::string emit_program(const Program& program, bool mangle) {
  std::ostringstream os;
  for (const PardataDecl& decl : program.pardatas) {
    os << "pardata " << decl.name << " <";
    for (std::size_t i = 0; i < decl.type_params.size(); ++i) {
      if (i) os << ", ";
      os << decl.type_params[i];
    }
    os << ">;\n";
  }
  if (!program.pardatas.empty()) os << '\n';
  for (const Function& fn : program.functions) {
    os << render_type(fn.ret, mangle) << ' ' << fn.name << '(';
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      if (i) os << ", ";
      os << emit_param(fn.params[i], mangle);
    }
    os << ')';
    if (fn.is_prototype) {
      os << ";\n\n";
      continue;
    }
    os << " {\n";
    emit_stmts(fn.body, os, 1, mangle);
    os << "}\n\n";
  }
  return os.str();
}

}  // namespace skil::skilc
