// Translation by instantiation (paper section 2.4, reference [1]).
//
// "We therefore use an instantiation procedure, which translates a
// (polymorphic) higher-order function (HOF), possibly with partial
// applications, to one or more specialized first-order monomorphic
// functions, as follows:
//   - functional arguments of HOFs are inlined into the definitions of
//     these HOFs
//   - HOFs with functional result are converted to functions with
//     non-functional result by eta-expansion, i.e. by supplying
//     additional parameters
//   - partial applications are translated by inlining and lifting of
//     their arguments
//   - a polymorphic function is translated to one or more monomorphic
//     functions, as determined by the calls of this function"
//
// The pass takes a type-checked program and returns a first-order,
// monomorphic program: every call of a polymorphic or higher-order
// function is redirected to a generated instance (array_map becomes
// array_map_1 etc., exactly as in the paper's worked example), with
// partially-applied arguments lifted to leading value parameters.
// Instances are memoised on (callee, functional arguments, type
// instantiation), which is also what lets the self-recursive HOF
// pattern (d&c calling itself with the same customizing functions)
// terminate.
//
// The paper's restriction is enforced here too: "a restriction has to
// be made regarding the functional arguments of HOFs ... this
// restriction concerns only a special class of recursively-defined
// HOFs" -- passing a partially-applied *higher-order* function as a
// functional argument (d&c handed to map) raises InstantiationError.
#pragma once

#include <string>

#include "skilc/ast.h"
#include "support/error.h"

namespace skil::skilc {

class InstantiationError : public support::Error {
 public:
  explicit InstantiationError(const std::string& what)
      : support::Error(what) {}
  InstantiationError(const std::string& what, int line, int column)
      : support::Error(what, line, column) {}
};

/// Translates a type-checked program into first-order monomorphic
/// form.  Functions that are neither polymorphic nor higher-order are
/// kept (with rewritten bodies); reachable polymorphic/higher-order
/// functions become generated instances.
Program instantiate(const Program& typed);

}  // namespace skil::skilc
