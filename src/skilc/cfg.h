// Per-function control-flow graphs over the Skil AST.
//
// Each function body is lowered to basic blocks of *actions* -- atomic
// steps (evaluate an expression, declare a variable, return) that the
// dataflow passes interpret.  Control statements split blocks: `if`
// forks then/else sub-graphs into a join block, `while`/`for` loop
// through a header block carrying the condition, `return` edges to the
// distinguished exit block.  Literal integer loop conditions are
// folded (while (1) has no exit edge, while (0) has no body edge), so
// reachability over the graph doubles as the unreachable-code check.
//
// The CFG also owns the function's variable table: parameters and
// every declared local, numbered densely for the bit-vector dataflow
// framework (dataflow.h).  Redeclarations of a live name map to the
// same slot (Skil's checker keeps a flat scope); the builder records
// them so the shadowing pass can warn.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "skilc/ast.h"

namespace skil::skilc {

/// One atomic step inside a basic block.
struct CfgAction {
  enum class Kind {
    kEval,    ///< evaluate `expr` (expression statement, condition, step)
    kDecl,    ///< declare `stmt->decl_name`, initialising when stmt->init
    kReturn,  ///< return; `expr` is the value (may be null)
  };

  Kind kind = Kind::kEval;
  const Stmt* stmt = nullptr;  ///< owning statement (never null)
  const Expr* expr = nullptr;  ///< evaluated expression (null: plain return)

  Span span() const {
    if (expr) return expr->span();
    return stmt->span();
  }
};

struct BasicBlock {
  int id = 0;
  std::vector<CfgAction> actions;
  std::vector<int> succs;
  std::vector<int> preds;
};

/// A declared variable or parameter of the function.
struct CfgLocal {
  std::string name;
  bool is_param = false;
  Span decl_span;
  const Stmt* decl = nullptr;  ///< declaring statement (null for params)
};

/// A redeclaration of an already-visible name (flat scope: the second
/// declaration shares the first one's slot).
struct CfgRedecl {
  int local = 0;  ///< index into Cfg::locals of the original binding
  const Stmt* decl = nullptr;
};

struct Cfg {
  const Function* fn = nullptr;
  std::vector<BasicBlock> blocks;
  int entry = 0;
  int exit = 0;

  std::vector<CfgLocal> locals;           ///< params first, then decls
  std::map<std::string, int> local_index;  ///< name -> index into locals
  std::vector<CfgRedecl> redecls;

  std::size_t num_locals() const { return locals.size(); }

  /// Block ids reachable from entry (including entry itself).
  std::vector<bool> reachable() const;
};

/// Builds the CFG of a function definition (must have a body).
Cfg build_cfg(const Function& fn);

}  // namespace skil::skilc
