#include "skilc/matchers.h"

#include <utility>

namespace skil::skilc::matchers {

bool structurally_equal(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Expr::Kind::kIntLit:
      return a.int_value == b.int_value;
    case Expr::Kind::kFloatLit:
      return a.float_value == b.float_value;
    case Expr::Kind::kName:
    case Expr::Kind::kSection:
      return a.name == b.name;
    default:
      break;
  }
  if (a.name != b.name) return false;
  const auto both = [](const ExprPtr& x, const ExprPtr& y) {
    if ((x == nullptr) != (y == nullptr)) return false;
    return x == nullptr || structurally_equal(*x, *y);
  };
  if (!both(a.lhs, b.lhs) || !both(a.rhs, b.rhs) || !both(a.callee, b.callee))
    return false;
  if (a.args.size() != b.args.size()) return false;
  for (std::size_t i = 0; i < a.args.size(); ++i)
    if (!structurally_equal(*a.args[i], *b.args[i])) return false;
  return true;
}

const Expr* MatchContext::get(const std::string& slot) const {
  const auto it = bound_.find(slot);
  return it == bound_.end() ? nullptr : it->second;
}

bool MatchContext::bind(const std::string& slot, const Expr& expr) {
  const auto it = bound_.find(slot);
  if (it != bound_.end()) return structurally_equal(*it->second, expr);
  bound_[slot] = &expr;
  trail_.push_back(slot);
  return true;
}

void MatchContext::rollback(std::size_t mark) {
  while (trail_.size() > mark) {
    bound_.erase(trail_.back());
    trail_.pop_back();
  }
}

bool ExprPattern::match(const Expr& expr, MatchContext& ctx) const {
  const std::size_t mark = ctx.mark();
  if (fn_(expr, ctx)) return true;
  ctx.rollback(mark);
  return false;
}

namespace {

Pattern make(ExprPattern::Fn fn) {
  return std::make_shared<ExprPattern>(std::move(fn));
}

}  // namespace

Pattern any() {
  return make([](const Expr&, MatchContext&) { return true; });
}

Pattern capture(std::string slot) {
  return make([slot = std::move(slot)](const Expr& expr, MatchContext& ctx) {
    return ctx.bind(slot, expr);
  });
}

Pattern capture(std::string slot, Pattern inner) {
  return make([slot = std::move(slot), inner = std::move(inner)](
                  const Expr& expr, MatchContext& ctx) {
    return inner->match(expr, ctx) && ctx.bind(slot, expr);
  });
}

Pattern name() {
  return make([](const Expr& expr, MatchContext&) {
    return expr.kind == Expr::Kind::kName;
  });
}

Pattern name(std::string spelled) {
  return make([spelled = std::move(spelled)](const Expr& expr, MatchContext&) {
    return expr.kind == Expr::Kind::kName && expr.name == spelled;
  });
}

Pattern name_capture(std::string slot) {
  return make([slot = std::move(slot)](const Expr& expr, MatchContext& ctx) {
    return expr.kind == Expr::Kind::kName && ctx.bind(slot, expr);
  });
}

Pattern int_lit(long value) {
  return make([value](const Expr& expr, MatchContext&) {
    return expr.kind == Expr::Kind::kIntLit && expr.int_value == value;
  });
}

Pattern binary(std::string op, Pattern lhs, Pattern rhs) {
  return make([op = std::move(op), lhs = std::move(lhs), rhs = std::move(rhs)](
                  const Expr& expr, MatchContext& ctx) {
    return expr.kind == Expr::Kind::kBinary && expr.name == op &&
           lhs->match(*expr.lhs, ctx) && rhs->match(*expr.rhs, ctx);
  });
}

Pattern assign(Pattern lhs, Pattern rhs) {
  return make([lhs = std::move(lhs), rhs = std::move(rhs)](
                  const Expr& expr, MatchContext& ctx) {
    return expr.kind == Expr::Kind::kAssign && lhs->match(*expr.lhs, ctx) &&
           rhs->match(*expr.rhs, ctx);
  });
}

Pattern indexed(Pattern base, Pattern index) {
  return make([base = std::move(base), index = std::move(index)](
                  const Expr& expr, MatchContext& ctx) {
    return expr.kind == Expr::Kind::kIndex && base->match(*expr.lhs, ctx) &&
           index->match(*expr.rhs, ctx);
  });
}

Pattern call(Pattern callee, std::vector<Pattern> args) {
  return make([callee = std::move(callee), args = std::move(args)](
                  const Expr& expr, MatchContext& ctx) {
    if (expr.kind != Expr::Kind::kCall || expr.args.size() != args.size())
      return false;
    if (!callee->match(*expr.callee, ctx)) return false;
    for (std::size_t i = 0; i < args.size(); ++i)
      if (!args[i]->match(*expr.args[i], ctx)) return false;
    return true;
  });
}

Pattern one_of(std::vector<Pattern> alternatives) {
  return make([alternatives = std::move(alternatives)](const Expr& expr,
                                                       MatchContext& ctx) {
    for (const Pattern& alternative : alternatives)
      if (alternative->match(expr, ctx)) return true;  // match() rolls back
    return false;
  });
}

LoopHeader match_loop_header(const Stmt& stmt) {
  LoopHeader header;
  if (stmt.kind != Stmt::Kind::kFor) return header;
  header.loop = &stmt;

  // Initialiser: `int i = lo;` or `i = lo;`, naming the induction
  // variable and its initial value.
  std::string var;
  const Expr* lo = nullptr;
  if (stmt.for_init == nullptr) return header;
  if (stmt.for_init->kind == Stmt::Kind::kVarDecl) {
    if (stmt.for_init->init == nullptr) return header;
    var = stmt.for_init->decl_name;
    lo = stmt.for_init->init.get();
  } else if (stmt.for_init->kind == Stmt::Kind::kExpr &&
             stmt.for_init->expr != nullptr &&
             stmt.for_init->expr->kind == Expr::Kind::kAssign &&
             stmt.for_init->expr->lhs->kind == Expr::Kind::kName) {
    var = stmt.for_init->expr->lhs->name;
    lo = stmt.for_init->expr->rhs.get();
  } else {
    return header;
  }

  // Condition: `i < hi`.
  if (stmt.expr == nullptr) return header;
  MatchContext ctx;
  const Pattern cond = binary("<", name(var), capture("hi"));
  if (!cond->match(*stmt.expr, ctx)) return header;

  // Step: `i = i + s` or `i = s + i`.
  if (stmt.init == nullptr) return header;
  MatchContext step_ctx;
  const Pattern step =
      assign(name(var), one_of({binary("+", name(var), capture("s")),
                                binary("+", capture("s"), name(var))}));
  if (!step->match(*stmt.init, step_ctx)) return header;
  const Expr* stride = step_ctx.get("s");
  if (stride->kind != Expr::Kind::kIntLit) return header;

  header.var = std::move(var);
  header.lo = lo;
  header.hi = ctx.get("hi");
  header.stride = stride->int_value;
  header.canonical = true;
  return header;
}

}  // namespace skil::skilc::matchers
