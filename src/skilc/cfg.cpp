#include "skilc/cfg.h"

namespace skil::skilc {

namespace {

/// A literal-int condition folds the corresponding edge away.
enum class CondFold { kUnknown, kAlwaysTrue, kAlwaysFalse };

CondFold fold_condition(const Expr* cond) {
  if (!cond) return CondFold::kAlwaysTrue;  // for (;;) has no condition
  if (cond->kind != Expr::Kind::kIntLit) return CondFold::kUnknown;
  return cond->int_value != 0 ? CondFold::kAlwaysTrue
                              : CondFold::kAlwaysFalse;
}

class Builder {
 public:
  explicit Builder(const Function& fn) {
    cfg_.fn = &fn;
    for (const Param& param : fn.params) {
      if (cfg_.local_index.count(param.name) == 0) {
        cfg_.local_index[param.name] = static_cast<int>(cfg_.locals.size());
        cfg_.locals.push_back(
            CfgLocal{param.name, /*is_param=*/true, param.span(), nullptr});
      }
    }
    cfg_.entry = new_block();
    cfg_.exit = new_block();
    current_ = cfg_.entry;
    lower_stmts(fn.body);
    // Falling off the end of the body flows into the exit block.
    if (current_ >= 0) add_edge(current_, cfg_.exit);
  }

  Cfg take() { return std::move(cfg_); }

 private:
  int new_block() {
    const int id = static_cast<int>(cfg_.blocks.size());
    cfg_.blocks.push_back(BasicBlock{id, {}, {}, {}});
    return id;
  }

  void add_edge(int from, int to) {
    cfg_.blocks[from].succs.push_back(to);
    cfg_.blocks[to].preds.push_back(from);
  }

  /// Appends an action to the current block, opening a fresh
  /// (unreached) block first when control already left -- statements
  /// after a return still appear in the graph so the reachability
  /// pass can report them.
  void append(CfgAction action) {
    if (current_ < 0) current_ = new_block();
    cfg_.blocks[current_].actions.push_back(action);
  }

  void declare(const Stmt& stmt) {
    const auto existing = cfg_.local_index.find(stmt.decl_name);
    if (existing != cfg_.local_index.end()) {
      cfg_.redecls.push_back(CfgRedecl{existing->second, &stmt});
      return;
    }
    cfg_.local_index[stmt.decl_name] = static_cast<int>(cfg_.locals.size());
    cfg_.locals.push_back(
        CfgLocal{stmt.decl_name, /*is_param=*/false, stmt.span(), &stmt});
  }

  void lower_stmts(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& stmt : stmts) lower_stmt(*stmt);
  }

  void lower_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kBlock:
        lower_stmts(stmt.body);
        return;
      case Stmt::Kind::kExpr:
        append(CfgAction{CfgAction::Kind::kEval, &stmt, stmt.expr.get()});
        return;
      case Stmt::Kind::kVarDecl:
        declare(stmt);
        append(CfgAction{CfgAction::Kind::kDecl, &stmt, stmt.init.get()});
        return;
      case Stmt::Kind::kReturn:
        append(CfgAction{CfgAction::Kind::kReturn, &stmt, stmt.expr.get()});
        if (current_ >= 0) add_edge(current_, cfg_.exit);
        current_ = -1;
        return;
      case Stmt::Kind::kIf:
        lower_if(stmt);
        return;
      case Stmt::Kind::kWhile:
        lower_while(stmt);
        return;
      case Stmt::Kind::kFor:
        lower_for(stmt);
        return;
    }
  }

  void lower_if(const Stmt& stmt) {
    append(CfgAction{CfgAction::Kind::kEval, &stmt, stmt.expr.get()});
    const int cond_block = current_;

    const int then_block = new_block();
    if (cond_block >= 0) add_edge(cond_block, then_block);
    current_ = then_block;
    lower_stmts(stmt.body);
    const int then_end = current_;

    int else_end = -1;
    int else_block = -1;
    if (!stmt.else_body.empty()) {
      else_block = new_block();
      if (cond_block >= 0) add_edge(cond_block, else_block);
      current_ = else_block;
      lower_stmts(stmt.else_body);
      else_end = current_;
    }

    // Join: reached from every branch end still open; with no else,
    // also straight from the condition.
    if (then_end < 0 && else_end < 0 && !stmt.else_body.empty()) {
      current_ = -1;  // both branches returned
      return;
    }
    const int join = new_block();
    if (then_end >= 0) add_edge(then_end, join);
    if (else_end >= 0) add_edge(else_end, join);
    if (stmt.else_body.empty() && cond_block >= 0) add_edge(cond_block, join);
    current_ = join;
  }

  void lower_while(const Stmt& stmt) {
    const int header = new_block();
    if (current_ >= 0) add_edge(current_, header);
    current_ = header;
    append(CfgAction{CfgAction::Kind::kEval, &stmt, stmt.expr.get()});
    const int cond_end = current_;
    const CondFold fold = fold_condition(stmt.expr.get());

    const int body = new_block();
    if (fold != CondFold::kAlwaysFalse) add_edge(cond_end, body);
    current_ = body;
    lower_stmts(stmt.body);
    if (current_ >= 0) add_edge(current_, header);

    if (fold == CondFold::kAlwaysTrue) {
      current_ = -1;  // while (1): nothing follows
      return;
    }
    const int after = new_block();
    add_edge(cond_end, after);
    current_ = after;
  }

  void lower_for(const Stmt& stmt) {
    if (stmt.for_init) lower_stmt(*stmt.for_init);

    const int header = new_block();
    if (current_ >= 0) add_edge(current_, header);
    current_ = header;
    if (stmt.expr)
      append(CfgAction{CfgAction::Kind::kEval, &stmt, stmt.expr.get()});
    const int cond_end = current_;
    const CondFold fold = fold_condition(stmt.expr.get());

    const int body = new_block();
    if (fold != CondFold::kAlwaysFalse) add_edge(cond_end, body);
    current_ = body;
    lower_stmts(stmt.body);
    if (stmt.init)  // the step expression
      append(CfgAction{CfgAction::Kind::kEval, &stmt, stmt.init.get()});
    if (current_ >= 0) add_edge(current_, header);

    if (fold == CondFold::kAlwaysTrue) {
      current_ = -1;
      return;
    }
    const int after = new_block();
    add_edge(cond_end, after);
    current_ = after;
  }

  Cfg cfg_;
  int current_ = 0;  ///< open block id, -1 after a return / no-exit loop
};

}  // namespace

std::vector<bool> Cfg::reachable() const {
  std::vector<bool> seen(blocks.size(), false);
  std::vector<int> stack = {entry};
  seen[entry] = true;
  while (!stack.empty()) {
    const int block = stack.back();
    stack.pop_back();
    for (const int succ : blocks[block].succs) {
      if (seen[succ]) continue;
      seen[succ] = true;
      stack.push_back(succ);
    }
  }
  return seen;
}

Cfg build_cfg(const Function& fn) { return Builder(fn).take(); }

}  // namespace skil::skilc
