#include "skilc/analyze.h"

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "skilc/cfg.h"
#include "skilc/dataflow.h"
#include "skilc/fusion.h"
#include "skilc/parser.h"
#include "skilc/skeletonize.h"
#include "skilc/typecheck.h"

namespace skil::skilc {

namespace {

std::string spell(Span span) {
  return "line " + std::to_string(span.line) + ":" +
         std::to_string(span.column);
}

// --- use/def extraction ----------------------------------------------------

/// One variable access inside an action, in evaluation order.
struct UseDefEvent {
  enum class Kind {
    kUse,           ///< read of a name
    kDef,           ///< assignment to a plain name
    kStoreThrough,  ///< indexed store through a name (base[i] = ...)
  };
  Kind kind;
  const Expr* name;  ///< the kName expression accessed
};

void collect_use_defs(const Expr& expr, std::vector<UseDefEvent>& out) {
  switch (expr.kind) {
    case Expr::Kind::kName:
      out.push_back({UseDefEvent::Kind::kUse, &expr});
      return;
    case Expr::Kind::kAssign: {
      // Right-hand side first (evaluation order), then the target.
      collect_use_defs(*expr.rhs, out);
      const Expr* target = expr.lhs.get();
      if (target->kind == Expr::Kind::kName) {
        out.push_back({UseDefEvent::Kind::kDef, target});
        return;
      }
      // Indexed store: the index expressions are reads; the base name
      // is a store-through (it must be initialised, and the store
      // counts as a use for liveness, not a kill).
      while (target->kind == Expr::Kind::kIndex) {
        collect_use_defs(*target->rhs, out);
        target = target->lhs.get();
      }
      if (target->kind == Expr::Kind::kName)
        out.push_back({UseDefEvent::Kind::kStoreThrough, target});
      else
        collect_use_defs(*target, out);
      return;
    }
    default:
      if (expr.lhs) collect_use_defs(*expr.lhs, out);
      if (expr.rhs) collect_use_defs(*expr.rhs, out);
      if (expr.callee) collect_use_defs(*expr.callee, out);
      for (const ExprPtr& arg : expr.args) collect_use_defs(*arg, out);
      return;
  }
}

/// A function's CFG plus the per-action use/def events, computed once
/// and shared by the dataflow passes.
struct FnAnalysis {
  const Function* fn = nullptr;
  Cfg cfg;
  /// events[block][action] in evaluation order.
  std::vector<std::vector<std::vector<UseDefEvent>>> events;
  std::vector<int> reads;   ///< per local: number of read accesses
  std::vector<int> writes;  ///< per local: number of assignments

  int local_of(const Expr& name) const {
    const auto it = cfg.local_index.find(name.name);
    return it == cfg.local_index.end() ? -1 : it->second;
  }
};

FnAnalysis prepare(const Function& fn) {
  FnAnalysis fa;
  fa.fn = &fn;
  fa.cfg = build_cfg(fn);
  fa.events.resize(fa.cfg.blocks.size());
  fa.reads.assign(fa.cfg.num_locals(), 0);
  fa.writes.assign(fa.cfg.num_locals(), 0);
  for (const BasicBlock& block : fa.cfg.blocks) {
    auto& block_events = fa.events[block.id];
    block_events.resize(block.actions.size());
    for (std::size_t a = 0; a < block.actions.size(); ++a) {
      const CfgAction& action = block.actions[a];
      if (action.expr) collect_use_defs(*action.expr, block_events[a]);
      for (const UseDefEvent& event : block_events[a]) {
        const int local = fa.local_of(*event.name);
        if (local < 0) continue;
        if (event.kind == UseDefEvent::Kind::kDef)
          ++fa.writes[local];
        else
          ++fa.reads[local];
      }
      if (action.kind == CfgAction::Kind::kDecl && action.stmt->init) {
        const auto it = fa.cfg.local_index.find(action.stmt->decl_name);
        if (it != fa.cfg.local_index.end()) ++fa.writes[it->second];
      }
    }
  }
  return fa;
}

/// The slot declared/assigned by a kDecl action (-1 when unknown).
int decl_local(const FnAnalysis& fa, const CfgAction& action) {
  const auto it = fa.cfg.local_index.find(action.stmt->decl_name);
  return it == fa.cfg.local_index.end() ? -1 : it->second;
}

// --- definite initialization ----------------------------------------------

void check_definite_init(const FnAnalysis& fa, DiagnosticSink& sink) {
  const Cfg& cfg = fa.cfg;
  const std::size_t nlocals = cfg.num_locals();
  std::vector<BlockTransfer> transfer(
      cfg.blocks.size(), BlockTransfer{BitVec(nlocals), BitVec(nlocals)});
  for (const BasicBlock& block : cfg.blocks) {
    BitVec& gen = transfer[block.id].gen;
    BitVec& kill = transfer[block.id].kill;
    for (std::size_t a = 0; a < block.actions.size(); ++a) {
      for (const UseDefEvent& event : fa.events[block.id][a]) {
        if (event.kind != UseDefEvent::Kind::kDef) continue;
        const int local = fa.local_of(*event.name);
        if (local < 0) continue;
        gen.set(local);
        kill.clear(local);
      }
      const CfgAction& action = block.actions[a];
      if (action.kind == CfgAction::Kind::kDecl) {
        const int local = decl_local(fa, action);
        if (local < 0) continue;
        if (action.stmt->init) {
          gen.set(local);
          kill.clear(local);
        } else {
          kill.set(local);
          gen.clear(local);
        }
      }
    }
  }

  BitVec boundary(nlocals);
  for (std::size_t i = 0; i < cfg.locals.size(); ++i)
    if (cfg.locals[i].is_param) boundary.set(i);

  const DataflowResult solved = solve_dataflow(
      cfg, transfer, Direction::kForward, Meet::kIntersection, boundary);

  const std::vector<bool> reachable = cfg.reachable();
  std::set<std::tuple<int, int, int>> reported;
  for (const BasicBlock& block : cfg.blocks) {
    if (!reachable[block.id]) continue;
    BitVec initialised = solved.in[block.id];
    for (std::size_t a = 0; a < block.actions.size(); ++a) {
      for (const UseDefEvent& event : fa.events[block.id][a]) {
        const int local = fa.local_of(*event.name);
        if (local < 0) continue;
        if (event.kind == UseDefEvent::Kind::kDef) {
          initialised.set(local);
          continue;
        }
        if (initialised.test(static_cast<std::size_t>(local))) continue;
        const Span span = event.name->span();
        if (!reported.insert({local, span.line, span.column}).second)
          continue;
        sink.report(Severity::kError, "init", span,
                    "variable '" + event.name->name +
                        "' may be used before initialisation",
                    "initialise '" + event.name->name +
                        "' at its declaration (" +
                        spell(cfg.locals[local].decl_span) +
                        ") or on every path reaching this use");
      }
      const CfgAction& action = block.actions[a];
      if (action.kind == CfgAction::Kind::kDecl) {
        const int local = decl_local(fa, action);
        if (local < 0) continue;
        if (action.stmt->init)
          initialised.set(local);
        else
          initialised.clear(local);
      }
    }
  }
}

// --- liveness: dead stores -------------------------------------------------

void check_dead_stores(const FnAnalysis& fa, DiagnosticSink& sink) {
  const Cfg& cfg = fa.cfg;
  const std::size_t nlocals = cfg.num_locals();
  std::vector<BlockTransfer> transfer(
      cfg.blocks.size(), BlockTransfer{BitVec(nlocals), BitVec(nlocals)});
  for (const BasicBlock& block : cfg.blocks) {
    BitVec& gen = transfer[block.id].gen;    // used before any def
    BitVec& kill = transfer[block.id].kill;  // defined in the block
    for (std::size_t a = block.actions.size(); a-- > 0;) {
      const CfgAction& action = block.actions[a];
      if (action.kind == CfgAction::Kind::kDecl && action.stmt->init) {
        const int local = decl_local(fa, action);
        if (local >= 0) {
          kill.set(local);
          gen.clear(local);
        }
      }
      const auto& events = fa.events[block.id][a];
      for (std::size_t e = events.size(); e-- > 0;) {
        const int local = fa.local_of(*events[e].name);
        if (local < 0) continue;
        if (events[e].kind == UseDefEvent::Kind::kDef) {
          kill.set(local);
          gen.clear(local);
        } else {
          gen.set(local);
        }
      }
    }
  }

  const DataflowResult solved =
      solve_dataflow(cfg, transfer, Direction::kBackward, Meet::kUnion,
                     BitVec(nlocals));

  const std::vector<bool> reachable = cfg.reachable();
  for (const BasicBlock& block : cfg.blocks) {
    if (!reachable[block.id]) continue;
    BitVec live = solved.out[block.id];
    for (std::size_t a = block.actions.size(); a-- > 0;) {
      const CfgAction& action = block.actions[a];
      // Declaration initialisers are not flagged: initialising at the
      // declaration is the defensive style the init pass recommends.
      if (action.kind == CfgAction::Kind::kDecl && action.stmt->init) {
        const int local = decl_local(fa, action);
        if (local >= 0) live.clear(local);
      }
      const auto& events = fa.events[block.id][a];
      for (std::size_t e = events.size(); e-- > 0;) {
        const int local = fa.local_of(*events[e].name);
        if (local < 0) continue;
        if (events[e].kind == UseDefEvent::Kind::kDef) {
          if (!live.test(static_cast<std::size_t>(local)) &&
              fa.reads[local] > 0) {
            sink.report(Severity::kWarning, "dead-store",
                        events[e].name->span(),
                        "value assigned to '" + events[e].name->name +
                            "' is never read (dead store)",
                        "remove the assignment or use the value");
          }
          live.clear(local);
        } else {
          live.set(local);
        }
      }
    }
  }
}

// --- unused parameters and bindings ---------------------------------------

void check_unused(const FnAnalysis& fa,
                  const std::set<std::string>& customizing,
                  DiagnosticSink& sink) {
  const Cfg& cfg = fa.cfg;
  for (std::size_t i = 0; i < cfg.locals.size(); ++i) {
    const CfgLocal& local = cfg.locals[i];
    if (fa.reads[i] > 0) continue;
    if (local.is_param) {
      // A customizing function's signature is imposed by the skeleton
      // it is passed to (map hands every function an Index whether it
      // wants one or not), so its parameters are exempt.
      if (customizing.count(fa.fn->name) != 0) continue;
      sink.report(Severity::kWarning, "unused", local.decl_span,
                  "unused parameter '" + local.name + "'",
                  "remove the parameter or use it");
      continue;
    }
    if (fa.writes[i] > 0) {
      sink.report(Severity::kWarning, "unused", local.decl_span,
                  "variable '" + local.name + "' is assigned but never read",
                  "remove the variable and its assignments");
    } else {
      sink.report(Severity::kWarning, "unused", local.decl_span,
                  "unused variable '" + local.name + "'",
                  "remove the declaration");
    }
  }
}

// --- unreachable code ------------------------------------------------------

void check_unreachable(const FnAnalysis& fa, DiagnosticSink& sink) {
  const Cfg& cfg = fa.cfg;
  const std::vector<bool> reachable = cfg.reachable();
  for (const BasicBlock& block : cfg.blocks) {
    if (reachable[block.id] || block.actions.empty()) continue;
    // Report only the entry points of unreachable regions: a block
    // all of whose predecessors are themselves unreachable *and*
    // already part of the region would cascade one warning per block.
    bool has_unreachable_pred = false;
    for (const int pred : block.preds)
      if (!reachable[pred] && !cfg.blocks[pred].actions.empty())
        has_unreachable_pred = true;
    if (has_unreachable_pred) continue;
    sink.report(Severity::kWarning, "unreachable", block.actions[0].span(),
                "unreachable code (no path from the function entry "
                "reaches this statement)",
                "remove the dead statements or fix the control flow "
                "above them");
  }
}

// --- shadowing -------------------------------------------------------------

void check_shadow(const FnAnalysis& fa, const Program& program,
                  const std::set<std::string>& pardatas,
                  DiagnosticSink& sink) {
  const Cfg& cfg = fa.cfg;
  for (const CfgRedecl& redecl : cfg.redecls) {
    const CfgLocal& original = cfg.locals[redecl.local];
    sink.report(Severity::kWarning, "shadow", redecl.decl->span(),
                original.is_param
                    ? "declaration of '" + original.name +
                          "' shadows a parameter"
                    : "redeclaration of '" + original.name +
                          "' shadows the earlier declaration at " +
                          spell(original.decl_span),
                "rename one of the bindings");
  }
  for (const CfgLocal& local : cfg.locals) {
    if (pardatas.count(local.name) != 0) {
      sink.report(Severity::kWarning, "shadow", local.decl_span,
                  (local.is_param ? std::string("parameter '")
                                  : std::string("declaration of '")) +
                      local.name + "' shadows the pardata type '" +
                      local.name + "'",
                  "rename the binding");
      continue;
    }
    if (!local.is_param && program.find_function(local.name) != nullptr) {
      sink.report(Severity::kWarning, "shadow", local.decl_span,
                  "declaration of '" + local.name + "' shadows the function '" +
                      local.name + "'",
                  "rename the binding");
    }
  }
}

// --- skeleton-argument safety ---------------------------------------------

bool is_impure_builtin(const std::string& name) {
  static const std::set<std::string> impure = {
      "rand", "srand",   "random", "print", "printf", "putchar",
      "puts", "getchar", "gets",   "scanf", "time",   "clock",
      "read", "write",
  };
  return impure.count(name) != 0;
}

/// Does a callee name belong to the skeleton families whose argument
/// functions run concurrently on all partitions (paper section 2)?
bool is_skeleton_name(const std::string& name) {
  return name.find("map") != std::string::npos ||
         name.find("fold") != std::string::npos ||
         name.find("scan") != std::string::npos ||
         name.find("gen_mult") != std::string::npos;
}

struct WriteRecord {
  Span span;
  std::string desc;  ///< e.g. "assigns 'p' at line 3:5"
};

/// Purity summary of one function, closed transitively over calls.
struct PuritySummary {
  std::map<int, WriteRecord> param_writes;  ///< param index -> first site
  std::vector<std::pair<std::string, Span>> free_writes;
  bool impure = false;
  Span impure_span;
  std::string impure_what;
};

class PurityAnalysis {
 public:
  explicit PurityAnalysis(const Program& program) : program_(program) {
    for (const Function& fn : program.functions) {
      if (fn.is_prototype || summaries_.count(fn.name) != 0) continue;
      summaries_[fn.name] = PuritySummary{};
    }
    // Chase call chains to the fixpoint (bounded by the function
    // count: each round can only add facts).
    bool changed = true;
    std::size_t rounds = program.functions.size() + 1;
    while (changed && rounds-- > 0) {
      changed = false;
      for (const Function& fn : program.functions) {
        if (fn.is_prototype) continue;
        PuritySummary next = summarise(fn);
        PuritySummary& current = summaries_[fn.name];
        if (next.param_writes.size() != current.param_writes.size() ||
            next.free_writes.size() != current.free_writes.size() ||
            next.impure != current.impure) {
          current = std::move(next);
          changed = true;
        }
      }
    }
  }

  const PuritySummary* summary(const std::string& name) const {
    const auto it = summaries_.find(name);
    return it == summaries_.end() ? nullptr : &it->second;
  }

 private:
  PuritySummary summarise(const Function& fn) {
    PuritySummary summary;
    std::map<std::string, int> param_index;
    std::set<std::string> locals;
    for (std::size_t i = 0; i < fn.params.size(); ++i)
      param_index[fn.params[i].name] = static_cast<int>(i);
    collect_locals(fn.body, locals);
    for (const StmtPtr& stmt : fn.body)
      walk_stmt(*stmt, param_index, locals, summary);
    return summary;
  }

  static void collect_locals(const std::vector<StmtPtr>& stmts,
                             std::set<std::string>& locals) {
    for (const StmtPtr& stmt : stmts) {
      if (stmt->kind == Stmt::Kind::kVarDecl) locals.insert(stmt->decl_name);
      if (stmt->for_init && stmt->for_init->kind == Stmt::Kind::kVarDecl)
        locals.insert(stmt->for_init->decl_name);
      collect_locals(stmt->body, locals);
      collect_locals(stmt->else_body, locals);
    }
  }

  void walk_stmt(const Stmt& stmt, const std::map<std::string, int>& params,
                 const std::set<std::string>& locals,
                 PuritySummary& summary) {
    if (stmt.expr) walk_expr(*stmt.expr, params, locals, summary);
    if (stmt.init) walk_expr(*stmt.init, params, locals, summary);
    if (stmt.for_init) walk_stmt(*stmt.for_init, params, locals, summary);
    for (const StmtPtr& inner : stmt.body)
      walk_stmt(*inner, params, locals, summary);
    for (const StmtPtr& inner : stmt.else_body)
      walk_stmt(*inner, params, locals, summary);
  }

  void record_write(const Expr& name, bool through_index,
                    const std::map<std::string, int>& params,
                    const std::set<std::string>& locals,
                    PuritySummary& summary) {
    const auto param = params.find(name.name);
    if (param != params.end()) {
      if (summary.param_writes.count(param->second) != 0) return;
      summary.param_writes[param->second] = WriteRecord{
          name.span(), std::string(through_index ? "stores through '"
                                                 : "assigns '") +
                           name.name + "' at " + spell(name.span())};
      return;
    }
    if (locals.count(name.name) != 0) return;  // a local copy: harmless
    summary.free_writes.emplace_back(name.name, name.span());
  }

  void walk_expr(const Expr& expr, const std::map<std::string, int>& params,
                 const std::set<std::string>& locals,
                 PuritySummary& summary) {
    if (expr.kind == Expr::Kind::kAssign) {
      walk_expr(*expr.rhs, params, locals, summary);
      const Expr* target = expr.lhs.get();
      if (target->kind == Expr::Kind::kName) {
        record_write(*target, /*through_index=*/false, params, locals,
                     summary);
        return;
      }
      while (target->kind == Expr::Kind::kIndex) {
        walk_expr(*target->rhs, params, locals, summary);
        target = target->lhs.get();
      }
      if (target->kind == Expr::Kind::kName)
        record_write(*target, /*through_index=*/true, params, locals,
                     summary);
      else
        walk_expr(*target, params, locals, summary);
      return;
    }
    if (expr.kind == Expr::Kind::kCall &&
        expr.callee->kind == Expr::Kind::kName) {
      const std::string& callee = expr.callee->name;
      if (is_impure_builtin(callee)) {
        if (!summary.impure) {
          summary.impure = true;
          summary.impure_span = expr.span();
          summary.impure_what = "calls the impure builtin '" + callee +
                                "' at " + spell(expr.span());
        }
      } else if (const PuritySummary* target = summary_of(callee)) {
        if (target->impure && !summary.impure) {
          summary.impure = true;
          summary.impure_span = expr.span();
          summary.impure_what =
              "calls '" + callee + "' (" + target->impure_what + ")";
        }
        // Aliasing through the call: handing a parameter to a callee
        // that writes the matching position writes *our* parameter.
        for (std::size_t i = 0; i < expr.args.size(); ++i) {
          const Expr& arg = *expr.args[i];
          if (arg.kind != Expr::Kind::kName) continue;
          const auto written =
              target->param_writes.find(static_cast<int>(i));
          if (written == target->param_writes.end()) continue;
          const auto param = params.find(arg.name);
          if (param == params.end() ||
              summary.param_writes.count(param->second) != 0)
            continue;
          summary.param_writes[param->second] =
              WriteRecord{arg.span(), "passes '" + arg.name + "' to '" +
                                          callee + "', which " +
                                          written->second.desc};
        }
      }
      for (const ExprPtr& arg : expr.args)
        walk_expr(*arg, params, locals, summary);
      return;
    }
    if (expr.lhs) walk_expr(*expr.lhs, params, locals, summary);
    if (expr.rhs) walk_expr(*expr.rhs, params, locals, summary);
    if (expr.callee) walk_expr(*expr.callee, params, locals, summary);
    for (const ExprPtr& arg : expr.args)
      walk_expr(*arg, params, locals, summary);
  }

  const PuritySummary* summary_of(const std::string& name) const {
    const auto it = summaries_.find(name);
    return it == summaries_.end() ? nullptr : &it->second;
  }

  const Program& program_;
  std::map<std::string, PuritySummary> summaries_;
};

/// A functional argument at a skeleton call site, resolved to the
/// underlying named function plus the number of partially-applied
/// (bound, hence shared) leading arguments.
struct CustomizingArg {
  const Function* target = nullptr;
  std::string name;
  std::size_t bound = 0;
  Span span;
};

bool resolve_customizing(const Program& program, const Expr& arg,
                         CustomizingArg& out) {
  out.span = arg.span();
  if (arg.kind == Expr::Kind::kName) {
    out.name = arg.name;
    out.bound = 0;
  } else if (arg.kind == Expr::Kind::kCall &&
             arg.callee->kind == Expr::Kind::kName) {
    out.name = arg.callee->name;
    out.bound = arg.args.size();
  } else {
    return false;  // sections and section applications are pure
  }
  out.target = program.find_function(out.name);
  return out.target != nullptr && !out.target->is_prototype;
}

void check_skeleton_call(const Program& program, const PurityAnalysis& purity,
                         const Expr& call, DiagnosticSink& sink) {
  const std::string& skeleton = call.callee->name;
  for (const ExprPtr& arg : call.args) {
    if (!arg->type || arg->type->kind != Type::Kind::kFunction) continue;
    CustomizingArg customizing;
    if (!resolve_customizing(program, *arg, customizing)) continue;
    const PuritySummary* summary = purity.summary(customizing.name);
    if (!summary) continue;

    const std::string who = "customizing function '" + customizing.name +
                            "' passed to '" + skeleton + "'";
    const std::string contract =
        "argument functions run concurrently on every partition (paper "
        "section 2) and must be pure";
    for (const auto& [index, record] : summary->param_writes) {
      if (static_cast<std::size_t>(index) >= customizing.bound) continue;
      sink.report(
          Severity::kError, "skeleton-purity", customizing.span,
          who + " writes the free variable '" +
              customizing.target->params[index].name +
              "' (bound by partial application at this call site): " +
              record.desc,
          contract);
    }
    for (const auto& [name, span] : summary->free_writes) {
      sink.report(Severity::kError, "skeleton-purity", customizing.span,
                  who + " writes the free variable '" + name + "' at " +
                      spell(span),
                  contract);
    }
    if (summary->impure) {
      sink.report(Severity::kError, "skeleton-purity", customizing.span,
                  who + " is impure: " + summary->impure_what, contract);
    }
  }
}

void walk_skeleton_calls(const Program& program, const PurityAnalysis& purity,
                         const Expr& expr, DiagnosticSink& sink) {
  if (expr.kind == Expr::Kind::kCall &&
      expr.callee->kind == Expr::Kind::kName &&
      is_skeleton_name(expr.callee->name)) {
    check_skeleton_call(program, purity, expr, sink);
  }
  if (expr.lhs) walk_skeleton_calls(program, purity, *expr.lhs, sink);
  if (expr.rhs) walk_skeleton_calls(program, purity, *expr.rhs, sink);
  if (expr.callee) walk_skeleton_calls(program, purity, *expr.callee, sink);
  for (const ExprPtr& arg : expr.args)
    walk_skeleton_calls(program, purity, *arg, sink);
}

void walk_skeleton_calls(const Program& program, const PurityAnalysis& purity,
                         const std::vector<StmtPtr>& stmts,
                         DiagnosticSink& sink) {
  for (const StmtPtr& stmt : stmts) {
    if (stmt->expr) walk_skeleton_calls(program, purity, *stmt->expr, sink);
    if (stmt->init) walk_skeleton_calls(program, purity, *stmt->init, sink);
    if (stmt->for_init) {
      if (stmt->for_init->expr)
        walk_skeleton_calls(program, purity, *stmt->for_init->expr, sink);
      if (stmt->for_init->init)
        walk_skeleton_calls(program, purity, *stmt->for_init->init, sink);
    }
    walk_skeleton_calls(program, purity, stmt->body, sink);
    walk_skeleton_calls(program, purity, stmt->else_body, sink);
  }
}

// --- customizing-function collection (for unused-parameter exemption) ------

void collect_customizing(const Expr& expr, std::set<std::string>& out) {
  if (expr.kind == Expr::Kind::kCall) {
    for (const ExprPtr& arg : expr.args) {
      if (!arg->type || arg->type->kind != Type::Kind::kFunction) continue;
      if (arg->kind == Expr::Kind::kName) out.insert(arg->name);
      if (arg->kind == Expr::Kind::kCall &&
          arg->callee->kind == Expr::Kind::kName)
        out.insert(arg->callee->name);
    }
  }
  if (expr.lhs) collect_customizing(*expr.lhs, out);
  if (expr.rhs) collect_customizing(*expr.rhs, out);
  if (expr.callee) collect_customizing(*expr.callee, out);
  for (const ExprPtr& arg : expr.args) collect_customizing(*arg, out);
}

void collect_customizing(const std::vector<StmtPtr>& stmts,
                         std::set<std::string>& out) {
  for (const StmtPtr& stmt : stmts) {
    if (stmt->expr) collect_customizing(*stmt->expr, out);
    if (stmt->init) collect_customizing(*stmt->init, out);
    if (stmt->for_init) {
      if (stmt->for_init->expr) collect_customizing(*stmt->for_init->expr, out);
      if (stmt->for_init->init) collect_customizing(*stmt->for_init->init, out);
    }
    collect_customizing(stmt->body, out);
    collect_customizing(stmt->else_body, out);
  }
}

}  // namespace

// --- PurityOracle -----------------------------------------------------------

struct PurityOracle::Impl {
  explicit Impl(const Program& program) : analysis(program) {}
  PurityAnalysis analysis;
};

PurityOracle::PurityOracle(const Program& program)
    : impl_(std::make_unique<Impl>(program)) {}
PurityOracle::~PurityOracle() = default;
PurityOracle::PurityOracle(PurityOracle&&) noexcept = default;
PurityOracle& PurityOracle::operator=(PurityOracle&&) noexcept = default;

bool PurityOracle::pure(const std::string& name, std::string* why,
                        Span* where) const {
  const PuritySummary* summary = impl_->analysis.summary(name);
  if (summary == nullptr) {
    if (why) *why = "is not a defined function";
    if (where) *where = Span{};
    return false;
  }
  if (!summary->param_writes.empty()) {
    const WriteRecord& record = summary->param_writes.begin()->second;
    if (why) *why = record.desc;
    if (where) *where = record.span;
    return false;
  }
  if (!summary->free_writes.empty()) {
    const auto& [written, span] = summary->free_writes.front();
    if (why)
      *why = "writes the free variable '" + written + "' at " + spell(span);
    if (where) *where = span;
    return false;
  }
  if (summary->impure) {
    if (why) *why = summary->impure_what;
    if (where) *where = summary->impure_span;
    return false;
  }
  return true;
}

const std::vector<AnalyzePass>& analyze_passes() {
  static const std::vector<AnalyzePass> passes = {
      {"init", &AnalyzeOptions::init},
      {"unreachable", &AnalyzeOptions::unreachable},
      {"dead-store", &AnalyzeOptions::dead_store},
      {"unused", &AnalyzeOptions::unused},
      {"shadow", &AnalyzeOptions::shadow},
      {"skeleton-purity", &AnalyzeOptions::skeleton_purity},
      {"fusion", &AnalyzeOptions::fusion},
      {"skeletonize", &AnalyzeOptions::skeletonize},
  };
  return passes;
}

bool impure_builtin(const std::string& name) {
  return is_impure_builtin(name);
}

void analyze(const Program& program, DiagnosticSink& sink,
             const AnalyzeOptions& options,
             SkeletonizeCounters* skeletonize_counters) {
  const std::set<std::string> pardatas = program.pardata_names();

  std::set<std::string> customizing;
  for (const Function& fn : program.functions)
    collect_customizing(fn.body, customizing);

  std::unique_ptr<PurityAnalysis> purity;
  if (options.skeleton_purity)
    purity = std::make_unique<PurityAnalysis>(program);

  for (const Function& fn : program.functions) {
    if (fn.is_prototype) continue;
    const FnAnalysis fa = prepare(fn);
    if (options.init) check_definite_init(fa, sink);
    if (options.unreachable) check_unreachable(fa, sink);
    if (options.dead_store) check_dead_stores(fa, sink);
    if (options.unused) check_unused(fa, customizing, sink);
    if (options.shadow) check_shadow(fa, program, pardatas, sink);
    if (options.skeleton_purity)
      walk_skeleton_calls(program, *purity, fn.body, sink);
  }
  if (options.skeletonize) {
    const SkeletonizeCounters counters = analyze_skeletonize(program, sink);
    if (skeletonize_counters != nullptr) *skeletonize_counters = counters;
  } else if (skeletonize_counters != nullptr) {
    *skeletonize_counters = SkeletonizeCounters{};
  }
  if (options.fusion) analyze_fusion(program, sink);
  sink.sort_by_location();
}

namespace {

/// Strips "skil lexer: "/"skil parser: " and a "line L:C: " prefix
/// from an exception message (the structured diagnostic re-renders
/// the span itself).
std::string strip_location_prefix(std::string message) {
  for (const char* prefix : {"skil lexer: ", "skil parser: "}) {
    if (message.rfind(prefix, 0) == 0) message = message.substr(
        std::string(prefix).size());
  }
  if (message.rfind("line ", 0) == 0) {
    const std::size_t colon = message.find(": ");
    if (colon != std::string::npos) message = message.substr(colon + 2);
  }
  return message;
}

}  // namespace

void lint_source(const std::string& source, DiagnosticSink& sink,
                 const AnalyzeOptions& options,
                 SkeletonizeCounters* skeletonize_counters) {
  if (skeletonize_counters != nullptr)
    *skeletonize_counters = SkeletonizeCounters{};
  Program program;
  try {
    program = parse(source);
  } catch (const support::Error& error) {
    const std::string what = error.what();
    const bool from_lexer = what.rfind("skil lexer:", 0) == 0;
    sink.report(Severity::kError, from_lexer ? "lex" : "parse",
                Span{error.line(), error.column()},
                strip_location_prefix(what));
    return;
  }
  if (!typecheck_collect(program, sink)) {
    // Analysis needs full type annotations; report the type errors
    // alone rather than second-guessing a partially-annotated AST.
    sink.sort_by_location();
    return;
  }
  analyze(program, sink, options, skeletonize_counters);
}

}  // namespace skil::skilc
