#include "skilc/lexer.h"

#include <cctype>
#include <map>

#include "support/error.h"

namespace skil::skilc {

const char* tok_name(Tok tok) {
  switch (tok) {
    case Tok::kEnd: return "end of input";
    case Tok::kIntLit: return "integer literal";
    case Tok::kFloatLit: return "float literal";
    case Tok::kName: return "identifier";
    case Tok::kTypeVar: return "type variable";
    case Tok::kInt: return "'int'";
    case Tok::kFloat: return "'float'";
    case Tok::kVoid: return "'void'";
    case Tok::kIf: return "'if'";
    case Tok::kElse: return "'else'";
    case Tok::kWhile: return "'while'";
    case Tok::kFor: return "'for'";
    case Tok::kReturn: return "'return'";
    case Tok::kPardata: return "'pardata'";
    case Tok::kTypedef: return "'typedef'";
    case Tok::kStruct: return "'struct'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kLAngle: return "'<'";
    case Tok::kRAngle: return "'>'";
    case Tok::kComma: return "','";
    case Tok::kSemicolon: return "';'";
    case Tok::kStar: return "'*'";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kAssign: return "'='";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLe: return "'<='";
    case Tok::kGe: return "'>='";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kNot: return "'!'";
    case Tok::kDot: return "'.'";
    case Tok::kArrow: return "'->'";
  }
  return "?";
}

namespace {

const std::map<std::string, Tok>& keywords() {
  static const std::map<std::string, Tok> map = {
      {"int", Tok::kInt},         {"float", Tok::kFloat},
      {"double", Tok::kFloat},    {"void", Tok::kVoid},
      {"if", Tok::kIf},           {"else", Tok::kElse},
      {"while", Tok::kWhile},     {"for", Tok::kFor},
      {"return", Tok::kReturn},   {"pardata", Tok::kPardata},
      {"typedef", Tok::kTypedef}, {"struct", Tok::kStruct},
  };
  return map;
}

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    for (;;) {
      skip_space_and_comments();
      Token token = next();
      tokens.push_back(token);
      if (token.kind == Tok::kEnd) break;
    }
    return tokens;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    throw support::ContractError("skil lexer: line " + std::to_string(line_) +
                                     ":" + std::to_string(column_) + ": " +
                                     message,
                                 line_, column_);
  }

  bool done() const { return pos_ >= src_.size(); }
  char peek(int ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char ch = src_[pos_++];
    if (ch == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return ch;
  }

  void skip_space_and_comments() {
    for (;;) {
      while (!done() && std::isspace(static_cast<unsigned char>(peek())))
        advance();
      if (peek() == '/' && peek(1) == '/') {
        while (!done() && peek() != '\n') advance();
        continue;
      }
      if (peek() == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!done() && !(peek() == '*' && peek(1) == '/')) advance();
        if (done()) fail("unterminated comment");
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  Token make(Tok kind) {
    Token token;
    token.kind = kind;
    token.line = line_;
    token.column = column_;
    return token;
  }

  Token next() {
    if (done()) return make(Tok::kEnd);
    Token token = make(Tok::kEnd);
    const char ch = peek();

    if (std::isdigit(static_cast<unsigned char>(ch))) return number(token);
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_')
      return word(token);
    if (ch == '$') return type_var(token);

    advance();
    switch (ch) {
      case '(': token.kind = Tok::kLParen; return token;
      case ')': token.kind = Tok::kRParen; return token;
      case '{': token.kind = Tok::kLBrace; return token;
      case '}': token.kind = Tok::kRBrace; return token;
      case '[': token.kind = Tok::kLBracket; return token;
      case ']': token.kind = Tok::kRBracket; return token;
      case ',': token.kind = Tok::kComma; return token;
      case ';': token.kind = Tok::kSemicolon; return token;
      case '*': token.kind = Tok::kStar; return token;
      case '+': token.kind = Tok::kPlus; return token;
      case '%': token.kind = Tok::kPercent; return token;
      case '.': token.kind = Tok::kDot; return token;
      case '/': token.kind = Tok::kSlash; return token;
      case '-':
        if (peek() == '>') {
          advance();
          token.kind = Tok::kArrow;
        } else {
          token.kind = Tok::kMinus;
        }
        return token;
      case '=':
        if (peek() == '=') {
          advance();
          token.kind = Tok::kEq;
        } else {
          token.kind = Tok::kAssign;
        }
        return token;
      case '!':
        if (peek() == '=') {
          advance();
          token.kind = Tok::kNe;
        } else {
          token.kind = Tok::kNot;
        }
        return token;
      case '<':
        if (peek() == '=') {
          advance();
          token.kind = Tok::kLe;
        } else {
          token.kind = Tok::kLAngle;
        }
        return token;
      case '>':
        if (peek() == '=') {
          advance();
          token.kind = Tok::kGe;
        } else {
          token.kind = Tok::kRAngle;
        }
        return token;
      case '&':
        if (peek() == '&') {
          advance();
          token.kind = Tok::kAndAnd;
          return token;
        }
        fail("stray '&'");
      case '|':
        if (peek() == '|') {
          advance();
          token.kind = Tok::kOrOr;
          return token;
        }
        fail("stray '|'");
      default:
        fail(std::string("unexpected character '") + ch + "'");
    }
  }

  Token number(Token token) {
    std::string text;
    bool is_float = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      is_float = true;
      text += advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        text += advance();
    }
    token.text = text;
    if (is_float) {
      token.kind = Tok::kFloatLit;
      token.float_value = std::stod(text);
    } else {
      token.kind = Tok::kIntLit;
      token.int_value = std::stol(text);
    }
    return token;
  }

  Token word(Token token) {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      text += advance();
    const auto it = keywords().find(text);
    token.kind = it == keywords().end() ? Tok::kName : it->second;
    token.text = text;
    return token;
  }

  Token type_var(Token token) {
    advance();  // '$'
    std::string text = "$";
    if (!std::isalpha(static_cast<unsigned char>(peek())))
      fail("type variable needs a name after '$'");
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      text += advance();
    token.kind = Tok::kTypeVar;
    token.text = text;
    return token;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> lex(const std::string& source) {
  return Lexer(source).run();
}

}  // namespace skil::skilc
