// Abstract syntax of the Skil subset.
//
// The instantiation translation clones and rewrites function bodies,
// so every node provides deep cloning.  Types annotated by the checker
// live directly on the nodes (TypePtr is shared and immutable).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "skilc/diagnostics.h"
#include "skilc/types.h"

namespace skil::skilc {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kIntLit,
    kFloatLit,
    kName,     ///< variable or function reference
    kCall,     ///< callee(args); may be a partial application
    kBinary,   ///< lhs op rhs
    kUnary,    ///< op operand (stored in lhs)
    kSection,  ///< the paper's (op) operator-to-function conversion
    kAssign,   ///< lhs = rhs
    kIndex,    ///< lhs[rhs]
  };

  Kind kind = Kind::kIntLit;
  long int_value = 0;
  double float_value = 0.0;
  std::string name;  ///< kName: identifier; kBinary/kUnary/kSection: operator
  ExprPtr lhs;
  ExprPtr rhs;
  ExprPtr callee;
  std::vector<ExprPtr> args;
  int line = 0;    ///< 1-based source position of the expression start
  int column = 0;

  Span span() const { return Span{line, column}; }

  /// Filled in by the type checker.
  TypePtr type;

  ExprPtr clone() const;
};

ExprPtr make_int_lit(long value);
ExprPtr make_float_lit(double value);
ExprPtr make_name(std::string name);
ExprPtr make_call(ExprPtr callee, std::vector<ExprPtr> args);
ExprPtr make_binary(std::string op, ExprPtr lhs, ExprPtr rhs);
ExprPtr make_unary(std::string op, ExprPtr operand);
ExprPtr make_section(std::string op);
ExprPtr make_assign(ExprPtr lhs, ExprPtr rhs);
ExprPtr make_index(ExprPtr base, ExprPtr index);

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    kExpr,
    kVarDecl,
    kIf,
    kWhile,
    kFor,
    kReturn,  ///< expr may be null (return;)
    kBlock,
  };

  Kind kind = Kind::kExpr;
  ExprPtr expr;  ///< kExpr / kReturn value / kIf / kWhile condition
  TypePtr decl_type;
  std::string decl_name;
  ExprPtr init;  ///< kVarDecl initialiser (may be null); kFor step expr
  StmtPtr for_init;
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;
  int line = 0;    ///< 1-based source position of the statement start
  int column = 0;

  Span span() const { return Span{line, column}; }

  StmtPtr clone() const;
};

std::vector<StmtPtr> clone_stmts(const std::vector<StmtPtr>& stmts);

struct Param {
  TypePtr type;
  std::string name;
  int line = 0;  ///< position of the parameter name
  int column = 0;
  bool is_function() const { return type->kind == Type::Kind::kFunction; }
  Span span() const { return Span{line, column}; }
};

struct Function {
  TypePtr ret;
  std::string name;
  std::vector<Param> params;
  std::vector<StmtPtr> body;
  bool is_prototype = false;  ///< declaration without body (skeleton header)
  int line = 0;               ///< position of the function name
  int column = 0;

  Span span() const { return Span{line, column}; }

  /// A higher-order function: has at least one functional parameter.
  bool is_hof() const {
    for (const Param& param : params)
      if (param.is_function()) return true;
    return false;
  }

  /// The full function type (params -> ret).
  TypePtr type() const {
    std::vector<TypePtr> params_types;
    for (const Param& param : params) params_types.push_back(param.type);
    return Type::make_function(std::move(params_types), ret);
  }

  /// Polymorphic: mentions a type variable anywhere in the signature.
  bool is_polymorphic() const { return !is_monomorphic(type()); }

  Function clone() const;
};

struct PardataDecl {
  std::string name;
  std::vector<std::string> type_params;  ///< "$t1", ...
};

struct Program {
  std::vector<PardataDecl> pardatas;
  std::vector<Function> functions;

  std::set<std::string> pardata_names() const {
    std::set<std::string> names;
    for (const PardataDecl& decl : pardatas) names.insert(decl.name);
    return names;
  }

  /// Finds a function by name, preferring a definition over a
  /// prototype when both are present.
  const Function* find_function(const std::string& name) const {
    const Function* prototype = nullptr;
    for (const Function& fn : functions) {
      if (fn.name != name) continue;
      if (!fn.is_prototype) return &fn;
      prototype = &fn;
    }
    return prototype;
  }
};

}  // namespace skil::skilc
