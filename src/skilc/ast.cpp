#include "skilc/ast.h"

namespace skil::skilc {

namespace {
ExprPtr clone_or_null(const ExprPtr& expr) {
  return expr ? expr->clone() : nullptr;
}
StmtPtr clone_or_null(const StmtPtr& stmt) {
  return stmt ? stmt->clone() : nullptr;
}
}  // namespace

ExprPtr Expr::clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->int_value = int_value;
  copy->float_value = float_value;
  copy->name = name;
  copy->lhs = clone_or_null(lhs);
  copy->rhs = clone_or_null(rhs);
  copy->callee = clone_or_null(callee);
  for (const ExprPtr& arg : args) copy->args.push_back(arg->clone());
  copy->line = line;
  copy->column = column;
  copy->type = type;
  return copy;
}

ExprPtr make_int_lit(long value) {
  auto expr = std::make_unique<Expr>();
  expr->kind = Expr::Kind::kIntLit;
  expr->int_value = value;
  return expr;
}

ExprPtr make_float_lit(double value) {
  auto expr = std::make_unique<Expr>();
  expr->kind = Expr::Kind::kFloatLit;
  expr->float_value = value;
  return expr;
}

ExprPtr make_name(std::string name) {
  auto expr = std::make_unique<Expr>();
  expr->kind = Expr::Kind::kName;
  expr->name = std::move(name);
  return expr;
}

ExprPtr make_call(ExprPtr callee, std::vector<ExprPtr> args) {
  auto expr = std::make_unique<Expr>();
  expr->kind = Expr::Kind::kCall;
  expr->callee = std::move(callee);
  expr->args = std::move(args);
  return expr;
}

ExprPtr make_binary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto expr = std::make_unique<Expr>();
  expr->kind = Expr::Kind::kBinary;
  expr->name = std::move(op);
  expr->lhs = std::move(lhs);
  expr->rhs = std::move(rhs);
  return expr;
}

ExprPtr make_unary(std::string op, ExprPtr operand) {
  auto expr = std::make_unique<Expr>();
  expr->kind = Expr::Kind::kUnary;
  expr->name = std::move(op);
  expr->lhs = std::move(operand);
  return expr;
}

ExprPtr make_section(std::string op) {
  auto expr = std::make_unique<Expr>();
  expr->kind = Expr::Kind::kSection;
  expr->name = std::move(op);
  return expr;
}

ExprPtr make_assign(ExprPtr lhs, ExprPtr rhs) {
  auto expr = std::make_unique<Expr>();
  expr->kind = Expr::Kind::kAssign;
  expr->lhs = std::move(lhs);
  expr->rhs = std::move(rhs);
  return expr;
}

ExprPtr make_index(ExprPtr base, ExprPtr index) {
  auto expr = std::make_unique<Expr>();
  expr->kind = Expr::Kind::kIndex;
  expr->lhs = std::move(base);
  expr->rhs = std::move(index);
  return expr;
}

StmtPtr Stmt::clone() const {
  auto copy = std::make_unique<Stmt>();
  copy->kind = kind;
  copy->expr = clone_or_null(expr);
  copy->decl_type = decl_type;
  copy->decl_name = decl_name;
  copy->init = clone_or_null(init);
  copy->for_init = clone_or_null(for_init);
  copy->body = clone_stmts(body);
  copy->else_body = clone_stmts(else_body);
  copy->line = line;
  copy->column = column;
  return copy;
}

std::vector<StmtPtr> clone_stmts(const std::vector<StmtPtr>& stmts) {
  std::vector<StmtPtr> copies;
  copies.reserve(stmts.size());
  for (const StmtPtr& stmt : stmts) copies.push_back(stmt->clone());
  return copies;
}

Function Function::clone() const {
  Function copy;
  copy.ret = ret;
  copy.name = name;
  copy.params = params;
  copy.body = clone_stmts(body);
  copy.is_prototype = is_prototype;
  copy.line = line;
  copy.column = column;
  return copy;
}

}  // namespace skil::skilc
