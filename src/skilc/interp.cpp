#include "skilc/interp.h"

#include <cstring>
#include <map>
#include <utility>

namespace skil::skilc {

namespace {

/// Signed arithmetic through unsigned casts: the fuzz tests feed
/// arbitrary ints, and wrapping is well-defined where overflow is not.
long wrap_add(long a, long b) {
  return static_cast<long>(static_cast<unsigned long>(a) +
                           static_cast<unsigned long>(b));
}
long wrap_sub(long a, long b) {
  return static_cast<long>(static_cast<unsigned long>(a) -
                           static_cast<unsigned long>(b));
}
long wrap_mul(long a, long b) {
  return static_cast<long>(static_cast<unsigned long>(a) *
                           static_cast<unsigned long>(b));
}

/// `len_1` and friends resolve to the builtin behind the prototype.
std::string base_name(const std::string& name) {
  const std::size_t underscore = name.find_last_of('_');
  if (underscore == std::string::npos || underscore + 1 >= name.size())
    return name;
  for (std::size_t i = underscore + 1; i < name.size(); ++i)
    if (name[i] < '0' || name[i] > '9') return name;
  return name.substr(0, underscore);
}

bool is_truthy(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kInt:
      return v.i != 0;
    case Value::Kind::kFloat:
      return v.f != 0.0;
    default:
      throw InterpError("skil interp: condition is not a scalar");
  }
}

double as_double(const Value& v) {
  if (v.kind == Value::Kind::kFloat) return v.f;
  if (v.kind == Value::Kind::kInt) return static_cast<double>(v.i);
  throw InterpError("skil interp: expected a numeric value");
}

long as_long(const Value& v) {
  if (v.kind == Value::Kind::kInt) return v.i;
  if (v.kind == Value::Kind::kFloat) return static_cast<long>(v.f);
  throw InterpError("skil interp: expected an integer value");
}

class Interp {
 public:
  Interp(const Program& program, long step_budget)
      : program_(program), steps_left_(step_budget) {}

  Value call(const std::string& name, std::vector<Value> args) {
    const Function* fn = program_.find_function(name);
    if (fn == nullptr || fn->is_prototype) return builtin(name, args);
    if (fn->params.size() != args.size())
      throw InterpError("skil interp: call of '" + name + "' with " +
                        std::to_string(args.size()) + " arguments, expected " +
                        std::to_string(fn->params.size()));
    std::map<std::string, Value> env;
    for (std::size_t i = 0; i < args.size(); ++i)
      env[fn->params[i].name] = std::move(args[i]);
    Value result = Value::unit();
    exec_block(fn->body, env, result);
    return result;
  }

 private:
  void tick() {
    if (--steps_left_ < 0)
      throw InterpError("skil interp: step budget exhausted");
  }

  Value builtin(const std::string& name, std::vector<Value>& args) {
    const std::string base = base_name(name);
    if (base == "len" || base == "part_upper") {
      if (args.size() != 1 || args[0].kind != Value::Kind::kArray)
        throw InterpError("skil interp: '" + base + "' expects an array");
      return Value::of_int(static_cast<long>(args[0].array->size()));
    }
    if (base == "part_lower") {
      if (args.size() != 1 || args[0].kind != Value::Kind::kArray)
        throw InterpError("skil interp: 'part_lower' expects an array");
      return Value::of_int(0);
    }
    if (base == "mk_index") {
      if (args.size() != 1)
        throw InterpError("skil interp: 'mk_index' expects one argument");
      return args[0];  // Index is the identity embedding of int
    }
    throw InterpError("skil interp: call of undefined function '" + name +
                      "'");
  }

  /// Executes statements; returns true when a `return` fired (its
  /// value is left in `result`).
  bool exec_block(const std::vector<StmtPtr>& stmts,
                  std::map<std::string, Value>& env, Value& result) {
    for (const StmtPtr& stmt : stmts)
      if (exec(*stmt, env, result)) return true;
    return false;
  }

  bool exec(const Stmt& stmt, std::map<std::string, Value>& env,
            Value& result) {
    tick();
    switch (stmt.kind) {
      case Stmt::Kind::kExpr:
        eval(*stmt.expr, env);
        return false;
      case Stmt::Kind::kVarDecl: {
        Value init = Value::of_int(0);
        if (stmt.decl_type != nullptr &&
            stmt.decl_type->kind == Type::Kind::kFloat)
          init = Value::of_float(0.0);
        if (stmt.init != nullptr) init = eval(*stmt.init, env);
        env[stmt.decl_name] = std::move(init);
        return false;
      }
      case Stmt::Kind::kIf: {
        if (is_truthy(eval(*stmt.expr, env)))
          return exec_block(stmt.body, env, result);
        return exec_block(stmt.else_body, env, result);
      }
      case Stmt::Kind::kWhile: {
        while (is_truthy(eval(*stmt.expr, env))) {
          tick();
          if (exec_block(stmt.body, env, result)) return true;
        }
        return false;
      }
      case Stmt::Kind::kFor: {
        if (stmt.for_init != nullptr && exec(*stmt.for_init, env, result))
          return true;
        while (stmt.expr == nullptr || is_truthy(eval(*stmt.expr, env))) {
          tick();
          if (exec_block(stmt.body, env, result)) return true;
          if (stmt.init != nullptr) eval(*stmt.init, env);
        }
        return false;
      }
      case Stmt::Kind::kReturn:
        result = stmt.expr != nullptr ? eval(*stmt.expr, env) : Value::unit();
        return true;
      case Stmt::Kind::kBlock:
        return exec_block(stmt.body, env, result);
    }
    return false;
  }

  Value eval(const Expr& expr, std::map<std::string, Value>& env) {
    tick();
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
        return Value::of_int(expr.int_value);
      case Expr::Kind::kFloatLit:
        return Value::of_float(expr.float_value);
      case Expr::Kind::kName: {
        const auto it = env.find(expr.name);
        if (it == env.end())
          throw InterpError("skil interp: read of unbound name '" +
                            expr.name + "'");
        return it->second;
      }
      case Expr::Kind::kCall: {
        if (expr.callee->kind != Expr::Kind::kName)
          throw InterpError(
              "skil interp: computed callees do not survive instantiation");
        std::vector<Value> args;
        args.reserve(expr.args.size());
        for (const ExprPtr& arg : expr.args) args.push_back(eval(*arg, env));
        return call(expr.callee->name, std::move(args));
      }
      case Expr::Kind::kBinary:
        return binary(expr, env);
      case Expr::Kind::kUnary: {
        const Value operand = eval(*expr.lhs, env);
        if (expr.name == "-") {
          if (operand.kind == Value::Kind::kFloat)
            return Value::of_float(-operand.f);
          return Value::of_int(wrap_sub(0, as_long(operand)));
        }
        if (expr.name == "!") return Value::of_int(is_truthy(operand) ? 0 : 1);
        if (expr.name == "+") return operand;
        throw InterpError("skil interp: unsupported unary operator '" +
                          expr.name + "'");
      }
      case Expr::Kind::kAssign: {
        Value value = eval(*expr.rhs, env);
        store(*expr.lhs, value, env);
        return value;
      }
      case Expr::Kind::kIndex: {
        const Value base = eval(*expr.lhs, env);
        const long index = as_long(eval(*expr.rhs, env));
        return element(base, index);
      }
      case Expr::Kind::kSection:
        throw InterpError(
            "skil interp: operator sections do not survive instantiation");
    }
    throw InterpError("skil interp: unsupported expression");
  }

  static Value& element(const Value& base, long index) {
    if (base.kind != Value::Kind::kArray)
      throw InterpError("skil interp: indexing a non-array value");
    if (index < 0 || static_cast<std::size_t>(index) >= base.array->size())
      throw InterpError("skil interp: index " + std::to_string(index) +
                        " out of bounds for array of size " +
                        std::to_string(base.array->size()));
    return (*base.array)[static_cast<std::size_t>(index)];
  }

  void store(const Expr& target, const Value& value,
             std::map<std::string, Value>& env) {
    if (target.kind == Expr::Kind::kName) {
      env[target.name] = value;
      return;
    }
    if (target.kind == Expr::Kind::kIndex) {
      const Value base = eval(*target.lhs, env);
      const long index = as_long(eval(*target.rhs, env));
      element(base, index) = value;
      return;
    }
    throw InterpError("skil interp: unsupported assignment target");
  }

  Value binary(const Expr& expr, std::map<std::string, Value>& env) {
    const std::string& op = expr.name;
    if (op == "&&") {
      if (!is_truthy(eval(*expr.lhs, env))) return Value::of_int(0);
      return Value::of_int(is_truthy(eval(*expr.rhs, env)) ? 1 : 0);
    }
    if (op == "||") {
      if (is_truthy(eval(*expr.lhs, env))) return Value::of_int(1);
      return Value::of_int(is_truthy(eval(*expr.rhs, env)) ? 1 : 0);
    }
    const Value lhs = eval(*expr.lhs, env);
    const Value rhs = eval(*expr.rhs, env);
    const bool as_float = lhs.kind == Value::Kind::kFloat ||
                          rhs.kind == Value::Kind::kFloat;
    if (op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
        op == ">=") {
      bool truth;
      if (as_float) {
        const double a = as_double(lhs);
        const double b = as_double(rhs);
        truth = op == "==" ? a == b
                : op == "!=" ? a != b
                : op == "<" ? a < b
                : op == "<=" ? a <= b
                : op == ">" ? a > b
                            : a >= b;
      } else {
        const long a = as_long(lhs);
        const long b = as_long(rhs);
        truth = op == "==" ? a == b
                : op == "!=" ? a != b
                : op == "<" ? a < b
                : op == "<=" ? a <= b
                : op == ">" ? a > b
                            : a >= b;
      }
      return Value::of_int(truth ? 1 : 0);
    }
    if (as_float) {
      const double a = as_double(lhs);
      const double b = as_double(rhs);
      if (op == "+") return Value::of_float(a + b);
      if (op == "-") return Value::of_float(a - b);
      if (op == "*") return Value::of_float(a * b);
      if (op == "/") return Value::of_float(a / b);
    } else {
      const long a = as_long(lhs);
      const long b = as_long(rhs);
      if (op == "+") return Value::of_int(wrap_add(a, b));
      if (op == "-") return Value::of_int(wrap_sub(a, b));
      if (op == "*") return Value::of_int(wrap_mul(a, b));
      if (op == "/") {
        if (b == 0) throw InterpError("skil interp: division by zero");
        if (b == -1) return Value::of_int(wrap_sub(0, a));
        return Value::of_int(a / b);
      }
      if (op == "%") {
        if (b == 0) throw InterpError("skil interp: modulo by zero");
        if (b == -1) return Value::of_int(0);
        return Value::of_int(a % b);
      }
    }
    throw InterpError("skil interp: unsupported binary operator '" + op +
                      "'");
  }

  const Program& program_;
  long steps_left_;
};

}  // namespace

bool value_bits_equal(const Value& a, const Value& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Value::Kind::kVoid:
      return true;
    case Value::Kind::kInt:
      return a.i == b.i;
    case Value::Kind::kFloat: {
      unsigned long long abits = 0;
      unsigned long long bbits = 0;
      std::memcpy(&abits, &a.f, sizeof abits);
      std::memcpy(&bbits, &b.f, sizeof bbits);
      return abits == bbits;
    }
    case Value::Kind::kArray: {
      if (a.array->size() != b.array->size()) return false;
      for (std::size_t i = 0; i < a.array->size(); ++i)
        if (!value_bits_equal((*a.array)[i], (*b.array)[i])) return false;
      return true;
    }
  }
  return false;
}

Value run_function(const Program& program, const std::string& name,
                   std::vector<Value> args, long step_budget) {
  const Function* fn = program.find_function(name);
  std::string target = name;
  if (fn == nullptr || fn->is_prototype) {
    // Entry points are instantiation roots and keep their names; fall
    // back to the first instance (`name_1`) for polymorphic entries.
    for (const Function& candidate : program.functions) {
      if (candidate.is_prototype) continue;
      if (candidate.name.rfind(name + "_", 0) == 0) {
        target = candidate.name;
        break;
      }
    }
  }
  Interp interp(program, step_budget);
  return interp.call(target, std::move(args));
}

}  // namespace skil::skilc
