#include "skilc/types.h"

#include <sstream>

namespace skil::skilc {

namespace {
TypePtr make(Type::Kind kind) {
  auto type = std::make_shared<Type>();
  type->kind = kind;
  return type;
}
}  // namespace

TypePtr Type::make_int() {
  static const TypePtr type = make(Kind::kInt);
  return type;
}

TypePtr Type::make_float() {
  static const TypePtr type = make(Kind::kFloat);
  return type;
}

TypePtr Type::make_void() {
  static const TypePtr type = make(Kind::kVoid);
  return type;
}

TypePtr Type::make_var(std::string name) {
  auto type = std::make_shared<Type>();
  type->kind = Kind::kVar;
  type->name = std::move(name);
  return type;
}

TypePtr Type::make_named(std::string name, std::vector<TypePtr> args) {
  auto type = std::make_shared<Type>();
  type->kind = Kind::kNamed;
  type->name = std::move(name);
  type->params = std::move(args);
  return type;
}

TypePtr Type::make_pointer(TypePtr pointee) {
  auto type = std::make_shared<Type>();
  type->kind = Kind::kPointer;
  type->result = std::move(pointee);
  return type;
}

TypePtr Type::make_function(std::vector<TypePtr> params, TypePtr result) {
  auto type = std::make_shared<Type>();
  type->kind = Kind::kFunction;
  type->params = std::move(params);
  type->result = std::move(result);
  return type;
}

bool type_equal(const TypePtr& a, const TypePtr& b) {
  if (a->kind != b->kind || a->name != b->name ||
      a->params.size() != b->params.size())
    return false;
  for (std::size_t i = 0; i < a->params.size(); ++i)
    if (!type_equal(a->params[i], b->params[i])) return false;
  if ((a->result == nullptr) != (b->result == nullptr)) return false;
  if (a->result && !type_equal(a->result, b->result)) return false;
  return true;
}

std::string type_to_string(const TypePtr& type) {
  switch (type->kind) {
    case Type::Kind::kInt:
      return "int";
    case Type::Kind::kFloat:
      return "float";
    case Type::Kind::kVoid:
      return "void";
    case Type::Kind::kVar:
      return type->name;
    case Type::Kind::kPointer:
      return type_to_string(type->result) + " *";
    case Type::Kind::kNamed: {
      if (type->params.empty()) return type->name;
      std::ostringstream os;
      os << type->name << " <";
      for (std::size_t i = 0; i < type->params.size(); ++i) {
        if (i) os << ", ";
        os << type_to_string(type->params[i]);
      }
      os << ">";
      return os.str();
    }
    case Type::Kind::kFunction: {
      std::ostringstream os;
      os << type_to_string(type->result) << " (";
      for (std::size_t i = 0; i < type->params.size(); ++i) {
        if (i) os << ", ";
        os << type_to_string(type->params[i]);
      }
      os << ")";
      return os.str();
    }
  }
  return "?";
}

TypePtr substitute(const TypePtr& type, const Subst& subst) {
  switch (type->kind) {
    case Type::Kind::kVar: {
      const auto it = subst.find(type->name);
      // Apply recursively so chains a->b->int resolve fully.
      return it == subst.end() ? type : substitute(it->second, subst);
    }
    case Type::Kind::kNamed: {
      if (type->params.empty()) return type;
      std::vector<TypePtr> args;
      args.reserve(type->params.size());
      for (const TypePtr& arg : type->params)
        args.push_back(substitute(arg, subst));
      return Type::make_named(type->name, std::move(args));
    }
    case Type::Kind::kPointer:
      return Type::make_pointer(substitute(type->result, subst));
    case Type::Kind::kFunction: {
      std::vector<TypePtr> params;
      params.reserve(type->params.size());
      for (const TypePtr& param : type->params)
        params.push_back(substitute(param, subst));
      return Type::make_function(std::move(params),
                                 substitute(type->result, subst));
    }
    default:
      return type;
  }
}

namespace {
bool occurs(const std::string& var, const TypePtr& type) {
  if (type->kind == Type::Kind::kVar) return type->name == var;
  for (const TypePtr& param : type->params)
    if (occurs(var, param)) return true;
  return type->result && occurs(var, type->result);
}
}  // namespace

bool unify(const TypePtr& a_in, const TypePtr& b_in, Subst& subst,
           const std::set<std::string>& pardata_names, bool at_top) {
  const TypePtr a = substitute(a_in, subst);
  const TypePtr b = substitute(b_in, subst);

  if (a->kind == Type::Kind::kVar || b->kind == Type::Kind::kVar) {
    const TypePtr& var = a->kind == Type::Kind::kVar ? a : b;
    const TypePtr& other = a->kind == Type::Kind::kVar ? b : a;
    if (other->kind == Type::Kind::kVar && other->name == var->name)
      return true;
    if (occurs(var->name, other)) return false;
    // Paper restriction: a type variable occurring as a *component* of
    // another data type may not be instantiated with a pardata type.
    if (!at_top && other->kind == Type::Kind::kNamed &&
        pardata_names.count(other->name))
      return false;
    subst[var->name] = other;
    return true;
  }

  if (a->kind != b->kind || a->name != b->name ||
      a->params.size() != b->params.size())
    return false;
  for (std::size_t i = 0; i < a->params.size(); ++i)
    if (!unify(a->params[i], b->params[i], subst, pardata_names,
               /*at_top=*/false))
      return false;
  if ((a->result == nullptr) != (b->result == nullptr)) return false;
  if (a->result &&
      !unify(a->result, b->result, subst, pardata_names, /*at_top=*/false))
    return false;
  return true;
}

TypePtr freshen(const TypePtr& type, const std::string& prefix) {
  switch (type->kind) {
    case Type::Kind::kVar:
      return Type::make_var("$" + prefix + type->name.substr(1));
    case Type::Kind::kNamed: {
      if (type->params.empty()) return type;
      std::vector<TypePtr> args;
      for (const TypePtr& arg : type->params)
        args.push_back(freshen(arg, prefix));
      return Type::make_named(type->name, std::move(args));
    }
    case Type::Kind::kPointer:
      return Type::make_pointer(freshen(type->result, prefix));
    case Type::Kind::kFunction: {
      std::vector<TypePtr> params;
      for (const TypePtr& param : type->params)
        params.push_back(freshen(param, prefix));
      return Type::make_function(std::move(params),
                                 freshen(type->result, prefix));
    }
    default:
      return type;
  }
}

void collect_vars(const TypePtr& type, std::set<std::string>& out) {
  if (type->kind == Type::Kind::kVar) out.insert(type->name);
  for (const TypePtr& param : type->params) collect_vars(param, out);
  if (type->result) collect_vars(type->result, out);
}

bool is_monomorphic(const TypePtr& type) {
  std::set<std::string> vars;
  collect_vars(type, vars);
  return vars.empty();
}

}  // namespace skil::skilc
