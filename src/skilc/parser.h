// Recursive-descent parser for the Skil subset.
#pragma once

#include <string>

#include "skilc/ast.h"

namespace skil::skilc {

/// Parses a whole translation unit.  Raises support::ContractError
/// with location info on syntax errors.
Program parse(const std::string& source);

}  // namespace skil::skilc
