// Declarative tree matchers over the Skil AST (LoopTactics style).
//
// The skeletonization pass (skeletonize.h) recognizes loop idioms by
// *shape*: `dst[i] = f(src[i])`, `acc = acc + g(src[i])`, the triple
// matrix-multiplication nest.  Encoding those shapes as hand-written
// if-ladders buries the idiom under navigation code; this library
// expresses them as composable pattern values instead:
//
//   auto p = m::assign(m::indexed(m::name_capture("dst"), m::name("i")),
//                      m::capture("rhs"));
//   m::MatchContext ctx;
//   if (p->match(expr, ctx)) { ... ctx.get("dst"), ctx.get("rhs") ... }
//
// Captures unify: binding the same slot twice succeeds only when the
// two expressions are structurally equal, so `m::capture("x") + ... +
// m::capture("x")` matches `a[i] + a[i]` but not `a[i] + b[i]`.
// `one_of` backtracks (a failed alternative rolls its bindings back).
//
// The statement-level `match_loop_header` recognizes the canonical
// counted loop `for (i = lo; i < hi; i = i + s)` the paper writes all
// skeleton bodies with, extracting the induction variable, both
// bounds and the stride.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "skilc/ast.h"

namespace skil::skilc::matchers {

/// Structural equality of expressions (kind, operator/name spelling,
/// literal values and all operands; types and spans are ignored).
bool structurally_equal(const Expr& a, const Expr& b);

/// Named capture slots bound during one match attempt.
class MatchContext {
 public:
  /// The expression bound to `slot` (null when the slot is unbound).
  const Expr* get(const std::string& slot) const;

  /// Binds `slot`, unifying with any existing binding: a second bind
  /// succeeds only when the expressions are structurally equal.
  bool bind(const std::string& slot, const Expr& expr);

  /// Snapshot/rollback for backtracking alternatives.
  std::size_t mark() const { return trail_.size(); }
  void rollback(std::size_t mark);

 private:
  std::map<std::string, const Expr*> bound_;
  std::vector<std::string> trail_;  ///< binding order, for rollback
};

class ExprPattern;
using Pattern = std::shared_ptr<const ExprPattern>;

/// A predicate over (expression, capture context).
class ExprPattern {
 public:
  using Fn = std::function<bool(const Expr&, MatchContext&)>;
  explicit ExprPattern(Fn fn) : fn_(std::move(fn)) {}

  /// True when `expr` has this pattern's shape; bindings made before
  /// a failure are rolled back, so a failed match leaves `ctx` as it
  /// was.
  bool match(const Expr& expr, MatchContext& ctx) const;

 private:
  Fn fn_;
};

// --- leaf patterns ---------------------------------------------------------

Pattern any();                            ///< matches every expression
Pattern capture(std::string slot);        ///< any expression, bound to slot
Pattern capture(std::string slot, Pattern inner);  ///< inner, bound to slot
Pattern name();                           ///< any identifier
Pattern name(std::string spelled);        ///< the identifier `spelled`
Pattern name_capture(std::string slot);   ///< any identifier, bound to slot
Pattern int_lit(long value);              ///< the integer literal `value`

// --- compound patterns -----------------------------------------------------

Pattern binary(std::string op, Pattern lhs, Pattern rhs);
Pattern assign(Pattern lhs, Pattern rhs);
Pattern indexed(Pattern base, Pattern index);          ///< base[index]
Pattern call(Pattern callee, std::vector<Pattern> args);
Pattern one_of(std::vector<Pattern> alternatives);     ///< backtracking

// --- the canonical loop header ---------------------------------------------

/// `for (i = lo; i < hi; i = i + stride)` with a single induction
/// variable threading header, condition and step.  `canonical` is
/// false when the statement is a for-loop of any other shape (the
/// fields are then unset).
struct LoopHeader {
  const Stmt* loop = nullptr;
  std::string var;           ///< the induction variable
  const Expr* lo = nullptr;  ///< initial value
  const Expr* hi = nullptr;  ///< exclusive upper bound
  long stride = 0;           ///< step increment (`i = i + stride`)
  bool canonical = false;
};

/// Matches the canonical counted-loop header.  Accepts both
/// `int i = lo` (declaration form) and `i = lo` (assignment form)
/// initialisers and both `i = i + s` / `i = s + i` steps.
LoopHeader match_loop_header(const Stmt& stmt);

}  // namespace skil::skilc::matchers
