// Tokens of the Skil language subset (paper section 2).
//
// Skil is "a subset of the language C" extended with: type variables
// written `$t`, the `pardata` construct, operator-to-function
// conversion `(op)`, higher-order function types in declarations, and
// partial application.  The token set below covers the language of
// the paper's examples (the d&c skeleton, quicksort, the array_map /
// above_thresh translation example of section 2.4).
#pragma once

#include <string>
#include <vector>

namespace skil::skilc {

enum class Tok {
  kEnd,
  // literals and names
  kIntLit,
  kFloatLit,
  kName,
  kTypeVar,  // $identifier
  // keywords
  kInt,
  kFloat,
  kVoid,
  kIf,
  kElse,
  kWhile,
  kFor,
  kReturn,
  kPardata,
  kTypedef,
  kStruct,
  // punctuation
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kLAngle,   // <  (also less-than; disambiguated by the parser)
  kRAngle,   // >
  kComma,
  kSemicolon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kAssign,
  kEq,
  kNe,
  kLe,
  kGe,
  kAndAnd,
  kOrOr,
  kNot,
  kDot,
  kArrow,
};

const char* tok_name(Tok tok);

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;   // names, type variables, literal spellings
  long int_value = 0;
  double float_value = 0.0;
  int line = 1;
  int column = 1;
};

}  // namespace skil::skilc
