// The skilc pipeline: lex -> parse -> polymorphic type check ->
// semantic analysis -> translation by instantiation -> C emission
// (paper sections 2.2-2.4).
#pragma once

#include <string>

#include "skilc/analyze.h"
#include "skilc/ast.h"
#include "skilc/diagnostics.h"
#include "skilc/fusion.h"
#include "skilc/skeletonize.h"

namespace skil::skilc {

struct CompileResult {
  Program typed;         ///< the checked source program
  Program instantiated;  ///< first-order monomorphic translation
  std::string c_code;    ///< emitted C-like text of the translation
  /// Analysis findings (warnings included; error-level findings never
  /// reach here -- compile() throws AnalysisError first).
  std::vector<Diagnostic> diagnostics;
  /// Outcome of the fusion pass (all zero unless CompileOptions::fuse
  /// requested the rewrite).
  FusionStats fusion;
  /// Outcome of the skeletonization pass (all zero unless
  /// CompileOptions::skeletonize requested the rewrite).
  SkeletonizeCounters skeletonize;
};

/// Full pipeline configuration.
struct CompileOptions {
  AnalyzeOptions analyze;
  /// Rewrite provably safe adjacent skeleton compositions (the
  /// compiler side of DESIGN.md section 13) before instantiation.
  /// The fused program is re-typechecked; every decision lands in
  /// CompileResult::diagnostics as a "fusion" note.
  bool fuse = false;
  /// Rewrite recognized sequential loops into skeleton calls
  /// (DESIGN.md section 16) before fusion, so a recognized map can
  /// fuse with an adjacent skeleton call.  The rewritten program is
  /// re-typechecked; every decision lands in
  /// CompileResult::diagnostics as a "skeletonize" note.
  bool skeletonize = false;
};

/// Runs the whole pipeline; throws ContractError / TypeError /
/// AnalysisError / InstantiationError with diagnostics on bad
/// programs.  Instantiation is refused when the analysis passes find
/// an error-level defect (use before initialization, an impure
/// skeleton argument).
CompileResult compile(const std::string& source);

/// As compile(), but with explicit analysis-pass switches.
CompileResult compile(const std::string& source,
                      const AnalyzeOptions& options);

/// As compile(), with full pipeline options (fusion rewrite).
CompileResult compile(const std::string& source,
                      const CompileOptions& options);

}  // namespace skil::skilc
