// The skilc pipeline: lex -> parse -> polymorphic type check ->
// translation by instantiation -> C emission (paper sections 2.2-2.4).
#pragma once

#include <string>

#include "skilc/ast.h"

namespace skil::skilc {

struct CompileResult {
  Program typed;         ///< the checked source program
  Program instantiated;  ///< first-order monomorphic translation
  std::string c_code;    ///< emitted C-like text of the translation
};

/// Runs the whole pipeline; throws ContractError / TypeError /
/// InstantiationError with diagnostics on bad programs.
CompileResult compile(const std::string& source);

}  // namespace skil::skilc
