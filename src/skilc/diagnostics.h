// Structured diagnostics for the skilc pipeline.
//
// Every stage of the compiler (lexer, parser, type checker, the
// semantic analysis passes, instantiation) reports findings as
// `Diagnostic` values: a severity, the name of the pass that produced
// it, a line/column span, the message, and an optional fix hint.  A
// `DiagnosticSink` collects many findings per run -- skil-lint shows
// every defect of a program at once instead of stopping at the first
// one -- and renders them as text or JSON.
#pragma once

#include <string>
#include <vector>

namespace skil::skilc {

/// A 1-based source position.  line == 0 means "no location known".
struct Span {
  int line = 0;
  int column = 0;

  bool known() const { return line > 0; }
  bool operator==(const Span& other) const {
    return line == other.line && column == other.column;
  }
};

enum class Severity { kNote, kWarning, kError };

const char* severity_name(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string pass;     ///< producing pass: "parse", "type", "init", ...
  Span span;
  std::string message;
  std::string hint;     ///< optional fix hint (empty when absent)
};

/// Renders one diagnostic as `file:line:col: severity: [pass] message`
/// plus an indented `hint:` line when a hint is present.
std::string render_diagnostic(const Diagnostic& diag,
                              const std::string& file);

/// Collects diagnostics across passes.
class DiagnosticSink {
 public:
  void report(Severity severity, std::string pass, Span span,
              std::string message, std::string hint = "");

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::size_t error_count() const { return errors_; }
  std::size_t warning_count() const { return warnings_; }
  bool has_errors() const { return errors_ > 0; }
  bool empty() const { return diags_.empty(); }

  /// Orders the findings by source position (then pass, then message)
  /// so output is deterministic regardless of pass execution order.
  void sort_by_location();

  /// Every diagnostic rendered as text, one line per finding (plus
  /// hint lines), in the current order.
  std::string render(const std::string& file) const;

  /// The findings as a JSON array (stable key order, sorted input).
  std::string render_json(const std::string& file) const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

}  // namespace skil::skilc
