#include "skilc/dataflow.h"

#include <deque>

namespace skil::skilc {

DataflowResult solve_dataflow(const Cfg& cfg,
                              const std::vector<BlockTransfer>& transfer,
                              Direction direction, Meet meet,
                              const BitVec& boundary) {
  const std::size_t nblocks = cfg.blocks.size();
  const std::size_t nbits = boundary.size();
  const bool forward = direction == Direction::kForward;
  const int boundary_block = forward ? cfg.entry : cfg.exit;

  // `top` is the neutral element of the meet; unvisited blocks start
  // there so the first real predecessor fact wins unchanged.
  const BitVec top(nbits, meet == Meet::kIntersection);

  DataflowResult result;
  result.in.assign(nblocks, top);
  result.out.assign(nblocks, top);

  std::deque<int> worklist;
  std::vector<bool> queued(nblocks, false);
  for (std::size_t b = 0; b < nblocks; ++b) {
    worklist.push_back(static_cast<int>(b));
    queued[b] = true;
  }

  while (!worklist.empty()) {
    const int block = worklist.front();
    worklist.pop_front();
    queued[block] = false;

    // Meet over the control-flow predecessors of this block in the
    // direction of the analysis.
    const std::vector<int>& sources =
        forward ? cfg.blocks[block].preds : cfg.blocks[block].succs;
    BitVec incoming = top;
    if (block == boundary_block) {
      incoming = boundary;
    } else {
      bool first = true;
      for (const int src : sources) {
        const BitVec& fact = forward ? result.out[src] : result.in[src];
        if (first) {
          incoming = fact;
          first = false;
        } else if (meet == Meet::kUnion) {
          incoming |= fact;
        } else {
          incoming &= fact;
        }
      }
    }

    BitVec flowed = incoming;
    flowed.subtract(transfer[block].kill);
    flowed |= transfer[block].gen;

    BitVec& stored_incoming = forward ? result.in[block] : result.out[block];
    BitVec& stored_flowed = forward ? result.out[block] : result.in[block];
    const bool changed =
        !(stored_incoming == incoming) || !(stored_flowed == flowed);
    stored_incoming = incoming;
    stored_flowed = flowed;
    if (!changed) continue;

    const std::vector<int>& dependents =
        forward ? cfg.blocks[block].succs : cfg.blocks[block].preds;
    for (const int next : dependents) {
      if (queued[next]) continue;
      queued[next] = true;
      worklist.push_back(next);
    }
  }
  return result;
}

}  // namespace skil::skilc
