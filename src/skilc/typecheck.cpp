#include "skilc/typecheck.h"

#include <map>

#include "support/error.h"

namespace skil::skilc {

namespace {

class Checker {
 public:
  explicit Checker(Program& program)
      : program_(program), pardata_names_(program.pardata_names()) {}

  /// Checks every function.  With a sink, failing functions each
  /// record one diagnostic and checking continues; without one, the
  /// first failure propagates as TypeError.
  bool run(DiagnosticSink* sink) {
    for (const Function& fn : program_.functions) {
      if (globals_.count(fn.name) != 0 && !fn.is_prototype &&
          !program_.find_function(fn.name)->is_prototype) {
        throw TypeError("skil type error: line " + std::to_string(fn.line) +
                            ":" + std::to_string(fn.column) +
                            ": duplicate function definition: " + fn.name,
                        "duplicate function definition: " + fn.name, fn.line,
                        fn.column);
      }
      globals_[fn.name] = fn.type();
    }
    bool ok = true;
    for (Function& fn : program_.functions) {
      if (fn.is_prototype) continue;
      if (!sink) {
        check_function(fn);
        continue;
      }
      try {
        check_function(fn);
      } catch (const TypeError& error) {
        ok = false;
        sink->report(Severity::kError, "type",
                     Span{error.line(), error.column()},
                     error.bare().empty() ? error.what() : error.bare(),
                     "in function '" + fn.name + "'");
      }
    }
    return ok;
  }

 private:
  [[noreturn]] void fail(Span span, const std::string& message) {
    std::string where;
    if (span.known())
      where = "line " + std::to_string(span.line) + ":" +
              std::to_string(span.column) + ": ";
    throw TypeError("skil type error: " + where + message, message, span.line,
                    span.column);
  }

  TypePtr fresh_var() {
    return Type::make_var("$_u" + std::to_string(next_fresh_++));
  }

  void check_function(Function& fn) {
    subst_.clear();
    locals_.clear();
    for (const Param& param : fn.params) locals_[param.name] = param.type;
    current_return_ = fn.ret;
    check_stmts(fn.body);
    // Resolve every annotation through the final substitution.
    finalize_stmts(fn.body);
  }

  void check_stmts(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& stmt : stmts) check_stmt(*stmt);
  }

  void check_stmt(Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kBlock:
        check_stmts(stmt.body);
        return;
      case Stmt::Kind::kExpr:
        infer(*stmt.expr);
        return;
      case Stmt::Kind::kVarDecl:
        if (stmt.init) {
          const TypePtr init_type = infer(*stmt.init);
          require_unify(stmt.decl_type, init_type, stmt.init->span(),
                        "initialiser type does not match declaration");
        }
        locals_[stmt.decl_name] = stmt.decl_type;
        return;
      case Stmt::Kind::kIf:
        infer(*stmt.expr);
        check_stmts(stmt.body);
        check_stmts(stmt.else_body);
        return;
      case Stmt::Kind::kWhile:
        infer(*stmt.expr);
        check_stmts(stmt.body);
        return;
      case Stmt::Kind::kFor:
        if (stmt.for_init) check_stmt(*stmt.for_init);
        if (stmt.expr) infer(*stmt.expr);
        if (stmt.init) infer(*stmt.init);
        check_stmts(stmt.body);
        return;
      case Stmt::Kind::kReturn:
        if (stmt.expr) {
          const TypePtr value = infer(*stmt.expr);
          require_unify(current_return_, value, stmt.expr->span(),
                        "return value does not match the result type");
        } else if (current_return_->kind != Type::Kind::kVoid) {
          fail(stmt.span(), "non-void function returns no value");
        }
        return;
    }
  }

  void require_unify(const TypePtr& a, const TypePtr& b, Span span,
                     const std::string& message) {
    if (!unify(a, b, subst_, pardata_names_))
      fail(span, message + ": " + type_to_string(substitute(a, subst_)) +
                     " vs " + type_to_string(substitute(b, subst_)));
  }

  TypePtr infer(Expr& expr) {
    const TypePtr type = infer_impl(expr);
    expr.type = type;
    return type;
  }

  TypePtr infer_impl(Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
        return Type::make_int();
      case Expr::Kind::kFloatLit:
        return Type::make_float();
      case Expr::Kind::kName: {
        const auto local = locals_.find(expr.name);
        if (local != locals_.end()) return local->second;
        const auto global = globals_.find(expr.name);
        if (global != globals_.end())
          // A fresh instance per use: each call site of a polymorphic
          // function may instantiate its variables differently.
          return freshen(global->second,
                         "_f" + std::to_string(next_fresh_++) + "_");
        fail(expr.span(), "unknown name '" + expr.name + "'");
      }
      case Expr::Kind::kSection: {
        // (op): a polymorphic binary function.  Comparison sections
        // yield int; arithmetic sections yield the operand type.
        const TypePtr operand = fresh_var();
        const bool comparison = expr.name == "<" || expr.name == ">" ||
                                expr.name == "==" || expr.name == "!=" ||
                                expr.name == "<=" || expr.name == ">=";
        return Type::make_function(
            {operand, operand}, comparison ? Type::make_int() : operand);
      }
      case Expr::Kind::kBinary: {
        const TypePtr lhs = infer(*expr.lhs);
        const TypePtr rhs = infer(*expr.rhs);
        if (expr.name == "&&" || expr.name == "||") return Type::make_int();
        require_unify(lhs, rhs, expr.span(),
                      "operands of '" + expr.name + "' disagree");
        const bool comparison = expr.name == "<" || expr.name == ">" ||
                                expr.name == "==" || expr.name == "!=" ||
                                expr.name == "<=" || expr.name == ">=";
        return comparison ? Type::make_int() : substitute(lhs, subst_);
      }
      case Expr::Kind::kUnary: {
        const TypePtr operand = infer(*expr.lhs);
        return expr.name == "!" ? Type::make_int() : operand;
      }
      case Expr::Kind::kAssign: {
        const TypePtr lhs = infer(*expr.lhs);
        const TypePtr rhs = infer(*expr.rhs);
        require_unify(lhs, rhs, expr.span(), "assignment types disagree");
        return substitute(lhs, subst_);
      }
      case Expr::Kind::kIndex: {
        const TypePtr base = substitute(infer(*expr.lhs), subst_);
        infer(*expr.rhs);
        if (base->kind == Type::Kind::kPointer) return base->result;
        if (base->kind == Type::Kind::kNamed && !base->params.empty())
          return base->params.front();
        fail(expr.span(),
             "cannot index a value of type " + type_to_string(base));
      }
      case Expr::Kind::kCall: {
        TypePtr callee = substitute(infer(*expr.callee), subst_);
        if (callee->kind != Type::Kind::kFunction)
          fail(expr.span(), "call of a non-function of type " +
                                type_to_string(callee));
        const std::size_t nparams = callee->params.size();
        const std::size_t nargs = expr.args.size();
        if (nargs > nparams)
          fail(expr.span(), "too many arguments: " + std::to_string(nargs) +
                                " for " + std::to_string(nparams));
        for (std::size_t i = 0; i < nargs; ++i) {
          const TypePtr arg = infer(*expr.args[i]);
          require_unify(callee->params[i], arg, expr.args[i]->span(),
                        "argument " + std::to_string(i + 1) +
                            " has the wrong type");
        }
        if (nargs == nparams) return substitute(callee->result, subst_);
        // Partial application (paper section 2.1): the call yields a
        // function over the remaining parameters.
        std::vector<TypePtr> rest(callee->params.begin() + nargs,
                                  callee->params.end());
        for (TypePtr& param : rest) param = substitute(param, subst_);
        return Type::make_function(std::move(rest),
                                   substitute(callee->result, subst_));
      }
    }
    fail(expr.span(), "unreachable expression kind");
  }

  void finalize_stmts(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& stmt : stmts) {
      if (stmt->expr) finalize_expr(*stmt->expr);
      if (stmt->init) finalize_expr(*stmt->init);
      if (stmt->for_init && stmt->for_init->expr)
        finalize_expr(*stmt->for_init->expr);
      if (stmt->for_init && stmt->for_init->init)
        finalize_expr(*stmt->for_init->init);
      finalize_stmts(stmt->body);
      finalize_stmts(stmt->else_body);
    }
  }

  void finalize_expr(Expr& expr) {
    if (expr.type) expr.type = substitute(expr.type, subst_);
    if (expr.lhs) finalize_expr(*expr.lhs);
    if (expr.rhs) finalize_expr(*expr.rhs);
    if (expr.callee) finalize_expr(*expr.callee);
    for (const ExprPtr& arg : expr.args) finalize_expr(*arg);
  }

  Program& program_;
  std::set<std::string> pardata_names_;
  std::map<std::string, TypePtr> globals_;
  std::map<std::string, TypePtr> locals_;
  Subst subst_;
  TypePtr current_return_;
  long next_fresh_ = 0;
};

}  // namespace

void typecheck(Program& program) { Checker(program).run(nullptr); }

bool typecheck_collect(Program& program, DiagnosticSink& sink) {
  return Checker(program).run(&sink);
}

}  // namespace skil::skilc
