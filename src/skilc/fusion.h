// AST skeleton fusion (DESIGN.md section 13, compiler side).
//
// The library fuses compositions at run time (skil/skeleton_fuse.h);
// this pass proves them at compile time.  A matcher walks every
// statement list for adjacent skeleton calls chained through an
// intermediate array:
//
//   array_map(f, a, b);            array_map(f, a, b);
//   array_map(g, b, c);            x = array_fold(conv, op, b);
//
// and -- when the composition is provably safe -- rewrites them into
// one call through a synthesized composed customizing function:
//
//   array_map(__fused_g_f, a, c);  x = array_fold(__fused_conv_f, op, a);
//
// Safety is exactly what the paper demands of customizing functions:
// both must be pure (the call-graph-transitive PurityOracle from the
// skeleton-purity pass proves it; an impure function is rejected
// naming the offending write site), neither may be partially applied
// (bound arguments are shared across partitions, so a composed
// wrapper would smuggle shared state past the purity check), and the
// intermediate array must have no other reader (otherwise eliminating
// the materialized value changes the program).
//
// Every decision is reported as a note-level, span-carrying
// diagnostic under the pass name "fusion", so `skil-lint --json`
// doubles as an optimization report: which compositions fused, which
// were rejected, and why.  The advisory entry point (analyze_fusion)
// never mutates; compile() performs the rewrite only when
// CompileOptions::fuse opts in, and re-typechecks the rewritten
// program.
#pragma once

#include "skilc/ast.h"
#include "skilc/diagnostics.h"

namespace skil::skilc {

/// Outcome counters of one fusion run (the compiler-side mirror of
/// the runtime's FusionCounters).
struct FusionStats {
  int seen = 0;                   ///< compositions the matcher recognised
  int fused_map_map = 0;          ///< map|map rewrites (or advisories)
  int fused_map_fold = 0;         ///< map|fold rewrites (or advisories)
  int rejected_impure = 0;        ///< a customizing function is impure
  int rejected_partial = 0;       ///< a stage is partially applied
  int rejected_intermediate = 0;  ///< the intermediate has another reader
  int rejected_shape = 0;         ///< signatures don't compose

  int fused() const { return fused_map_map + fused_map_fold; }
  int rejected() const {
    return rejected_impure + rejected_partial + rejected_intermediate +
           rejected_shape;
  }
};

/// Rewrites every provably safe adjacent skeleton composition in the
/// *type-checked* program, appending synthesized composed functions
/// and reporting one note per decision into `sink`.  The caller must
/// re-typecheck the program (the synthesized wrappers carry no type
/// annotations).
FusionStats fuse_program(Program& program, DiagnosticSink& sink);

/// Advisory form: identical matching and diagnostics ("can fuse"
/// instead of "fused"), no mutation.  Used by skil-lint (disable with
/// --no-fusion).
FusionStats analyze_fusion(const Program& program, DiagnosticSink& sink);

}  // namespace skil::skilc
