#include "skilc/parser.h"

#include "skilc/lexer.h"
#include "support/error.h"

namespace skil::skilc {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program run() {
    Program program;
    while (!at(Tok::kEnd)) {
      if (at(Tok::kPardata)) {
        program.pardatas.push_back(pardata_decl());
      } else {
        program.functions.push_back(function());
      }
    }
    return program;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    throw support::ContractError(
        "skil parser: line " + std::to_string(peek().line) + ":" +
            std::to_string(peek().column) + ": " + message + " (found " +
            tok_name(peek().kind) +
            (peek().text.empty() ? "" : " '" + peek().text + "'") + ")",
        peek().line, peek().column);
  }

  const Token& peek(int ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool at(Tok kind) const { return peek().kind == kind; }
  Token advance() { return tokens_[pos_++]; }
  Token expect(Tok kind, const std::string& what) {
    if (!at(kind)) fail("expected " + what);
    return advance();
  }
  bool accept(Tok kind) {
    if (!at(kind)) return false;
    advance();
    return true;
  }

  /// Stamps an expression with the span of its starting token.
  static ExprPtr spanned(ExprPtr expr, const Token& start) {
    expr->line = start.line;
    expr->column = start.column;
    return expr;
  }

  // --- types ------------------------------------------------------------

  bool starts_type() const {
    switch (peek().kind) {
      case Tok::kInt:
      case Tok::kFloat:
      case Tok::kVoid:
      case Tok::kTypeVar:
        return true;
      case Tok::kName:
        // A name starts a type in declaration position when followed
        // by another name ("Index ix"), a '<' type-argument list, or a
        // '*' ("list * l").
        return peek(1).kind == Tok::kName || peek(1).kind == Tok::kLAngle ||
               peek(1).kind == Tok::kStar;
      default:
        return false;
    }
  }

  TypePtr type() {
    TypePtr base;
    switch (peek().kind) {
      case Tok::kInt:
        advance();
        base = Type::make_int();
        break;
      case Tok::kFloat:
        advance();
        base = Type::make_float();
        break;
      case Tok::kVoid:
        advance();
        base = Type::make_void();
        break;
      case Tok::kTypeVar:
        base = Type::make_var(advance().text);
        break;
      case Tok::kName: {
        const std::string name = advance().text;
        std::vector<TypePtr> args;
        if (accept(Tok::kLAngle)) {
          args.push_back(type());
          while (accept(Tok::kComma)) args.push_back(type());
          expect(Tok::kRAngle, "'>' after type arguments");
        }
        base = Type::make_named(name, std::move(args));
        break;
      }
      default:
        fail("expected a type");
    }
    while (accept(Tok::kStar)) base = Type::make_pointer(base);
    return base;
  }

  // --- declarations -----------------------------------------------------

  PardataDecl pardata_decl() {
    expect(Tok::kPardata, "'pardata'");
    PardataDecl decl;
    decl.name = expect(Tok::kName, "pardata name").text;
    expect(Tok::kLAngle, "'<' after pardata name");
    decl.type_params.push_back(expect(Tok::kTypeVar, "type variable").text);
    while (accept(Tok::kComma))
      decl.type_params.push_back(expect(Tok::kTypeVar, "type variable").text);
    expect(Tok::kRAngle, "'>' after pardata type parameters");
    // The implementation part stays hidden (paper section 2.3): accept
    // and discard anything up to the ';'.
    while (!at(Tok::kSemicolon) && !at(Tok::kEnd)) advance();
    expect(Tok::kSemicolon, "';' after pardata declaration");
    return decl;
  }

  Param param() {
    Param p;
    p.type = type();
    const Token name = expect(Tok::kName, "parameter name");
    p.name = name.text;
    p.line = name.line;
    p.column = name.column;
    if (accept(Tok::kLParen)) {
      // A functional parameter: `$t2 map_f ($t1, Index)`.
      std::vector<TypePtr> fn_params;
      if (!at(Tok::kRParen)) {
        fn_params.push_back(type());
        if (at(Tok::kName)) advance();  // optional parameter name
        while (accept(Tok::kComma)) {
          fn_params.push_back(type());
          if (at(Tok::kName)) advance();
        }
      }
      expect(Tok::kRParen, "')' after functional parameter types");
      p.type = Type::make_function(std::move(fn_params), p.type);
    }
    return p;
  }

  Function function() {
    Function fn;
    fn.ret = type();
    const Token name = expect(Tok::kName, "function name");
    fn.name = name.text;
    fn.line = name.line;
    fn.column = name.column;
    expect(Tok::kLParen, "'(' after function name");
    if (!at(Tok::kRParen)) {
      fn.params.push_back(param());
      while (accept(Tok::kComma)) fn.params.push_back(param());
    }
    expect(Tok::kRParen, "')' after parameters");
    if (accept(Tok::kSemicolon)) {
      fn.is_prototype = true;
      return fn;
    }
    expect(Tok::kLBrace, "function body");
    while (!at(Tok::kRBrace)) fn.body.push_back(statement());
    expect(Tok::kRBrace, "'}' at end of function body");
    return fn;
  }

  // --- statements ---------------------------------------------------------

  StmtPtr statement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = peek().line;
    stmt->column = peek().column;
    if (accept(Tok::kLBrace)) {
      stmt->kind = Stmt::Kind::kBlock;
      while (!at(Tok::kRBrace)) stmt->body.push_back(statement());
      expect(Tok::kRBrace, "'}'");
      return stmt;
    }
    if (accept(Tok::kIf)) {
      stmt->kind = Stmt::Kind::kIf;
      expect(Tok::kLParen, "'(' after if");
      stmt->expr = expression();
      expect(Tok::kRParen, "')' after condition");
      stmt->body.push_back(statement());
      if (accept(Tok::kElse)) stmt->else_body.push_back(statement());
      return stmt;
    }
    if (accept(Tok::kWhile)) {
      stmt->kind = Stmt::Kind::kWhile;
      expect(Tok::kLParen, "'(' after while");
      stmt->expr = expression();
      expect(Tok::kRParen, "')' after condition");
      stmt->body.push_back(statement());
      return stmt;
    }
    if (accept(Tok::kFor)) {
      stmt->kind = Stmt::Kind::kFor;
      expect(Tok::kLParen, "'(' after for");
      if (!at(Tok::kSemicolon)) {
        stmt->for_init = starts_type() ? var_decl() : expr_statement();
      } else {
        advance();
      }
      if (!at(Tok::kSemicolon)) stmt->expr = expression();
      expect(Tok::kSemicolon, "';' after for condition");
      if (!at(Tok::kRParen)) stmt->init = expression();  // step expression
      expect(Tok::kRParen, "')' after for header");
      stmt->body.push_back(statement());
      return stmt;
    }
    if (accept(Tok::kReturn)) {
      stmt->kind = Stmt::Kind::kReturn;
      if (!at(Tok::kSemicolon)) stmt->expr = expression();
      expect(Tok::kSemicolon, "';' after return");
      return stmt;
    }
    if (starts_type()) return var_decl();
    return expr_statement();
  }

  StmtPtr var_decl() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kVarDecl;
    stmt->decl_type = type();
    const Token name = expect(Tok::kName, "variable name");
    stmt->decl_name = name.text;
    stmt->line = name.line;
    stmt->column = name.column;
    if (accept(Tok::kAssign)) stmt->init = expression();
    expect(Tok::kSemicolon, "';' after declaration");
    return stmt;
  }

  StmtPtr expr_statement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kExpr;
    stmt->line = peek().line;
    stmt->column = peek().column;
    stmt->expr = expression();
    expect(Tok::kSemicolon, "';' after expression");
    return stmt;
  }

  // --- expressions --------------------------------------------------------

  ExprPtr expression() { return assignment(); }

  ExprPtr assignment() {
    const Token start = peek();
    ExprPtr lhs = logical_or();
    if (accept(Tok::kAssign))
      return spanned(make_assign(std::move(lhs), assignment()), start);
    return lhs;
  }

  ExprPtr logical_or() {
    const Token start = peek();
    ExprPtr lhs = logical_and();
    while (accept(Tok::kOrOr))
      lhs = spanned(make_binary("||", std::move(lhs), logical_and()), start);
    return lhs;
  }

  ExprPtr logical_and() {
    const Token start = peek();
    ExprPtr lhs = equality();
    while (accept(Tok::kAndAnd))
      lhs = spanned(make_binary("&&", std::move(lhs), equality()), start);
    return lhs;
  }

  ExprPtr equality() {
    const Token start = peek();
    ExprPtr lhs = relational();
    for (;;) {
      if (accept(Tok::kEq))
        lhs = spanned(make_binary("==", std::move(lhs), relational()), start);
      else if (accept(Tok::kNe))
        lhs = spanned(make_binary("!=", std::move(lhs), relational()), start);
      else
        return lhs;
    }
  }

  ExprPtr relational() {
    const Token start = peek();
    ExprPtr lhs = additive();
    for (;;) {
      if (accept(Tok::kLAngle))
        lhs = spanned(make_binary("<", std::move(lhs), additive()), start);
      else if (accept(Tok::kRAngle))
        lhs = spanned(make_binary(">", std::move(lhs), additive()), start);
      else if (accept(Tok::kLe))
        lhs = spanned(make_binary("<=", std::move(lhs), additive()), start);
      else if (accept(Tok::kGe))
        lhs = spanned(make_binary(">=", std::move(lhs), additive()), start);
      else
        return lhs;
    }
  }

  ExprPtr additive() {
    const Token start = peek();
    ExprPtr lhs = multiplicative();
    for (;;) {
      if (accept(Tok::kPlus))
        lhs =
            spanned(make_binary("+", std::move(lhs), multiplicative()), start);
      else if (accept(Tok::kMinus))
        lhs =
            spanned(make_binary("-", std::move(lhs), multiplicative()), start);
      else
        return lhs;
    }
  }

  ExprPtr multiplicative() {
    const Token start = peek();
    ExprPtr lhs = unary();
    for (;;) {
      if (accept(Tok::kStar))
        lhs = spanned(make_binary("*", std::move(lhs), unary()), start);
      else if (accept(Tok::kSlash))
        lhs = spanned(make_binary("/", std::move(lhs), unary()), start);
      else if (accept(Tok::kPercent))
        lhs = spanned(make_binary("%", std::move(lhs), unary()), start);
      else
        return lhs;
    }
  }

  ExprPtr unary() {
    const Token start = peek();
    if (accept(Tok::kMinus)) return spanned(make_unary("-", unary()), start);
    if (accept(Tok::kNot)) return spanned(make_unary("!", unary()), start);
    return postfix();
  }

  ExprPtr postfix() {
    const Token start = peek();
    ExprPtr expr = primary();
    for (;;) {
      if (accept(Tok::kLParen)) {
        std::vector<ExprPtr> args;
        if (!at(Tok::kRParen)) {
          args.push_back(expression());
          while (accept(Tok::kComma)) args.push_back(expression());
        }
        expect(Tok::kRParen, "')' after arguments");
        expr = spanned(make_call(std::move(expr), std::move(args)), start);
      } else if (accept(Tok::kLBracket)) {
        ExprPtr index = expression();
        expect(Tok::kRBracket, "']' after index");
        expr = spanned(make_index(std::move(expr), std::move(index)), start);
      } else {
        return expr;
      }
    }
  }

  /// The paper's operator sections: '(' op ')' turns an operator into
  /// a function value, e.g. fold((+), lst) or map((*)(2), lst).
  bool at_section() const {
    if (!at(Tok::kLParen)) return false;
    const Tok op = peek(1).kind;
    const bool is_op = op == Tok::kPlus || op == Tok::kMinus ||
                       op == Tok::kStar || op == Tok::kSlash ||
                       op == Tok::kPercent || op == Tok::kLAngle ||
                       op == Tok::kRAngle || op == Tok::kEq ||
                       op == Tok::kNe || op == Tok::kLe || op == Tok::kGe;
    return is_op && peek(2).kind == Tok::kRParen;
  }

  ExprPtr primary() {
    if (at_section()) {
      const Token start = advance();  // (
      const Token op = advance();
      advance();  // )
      switch (op.kind) {
        case Tok::kPlus: return spanned(make_section("+"), start);
        case Tok::kMinus: return spanned(make_section("-"), start);
        case Tok::kStar: return spanned(make_section("*"), start);
        case Tok::kSlash: return spanned(make_section("/"), start);
        case Tok::kPercent: return spanned(make_section("%"), start);
        case Tok::kLAngle: return spanned(make_section("<"), start);
        case Tok::kRAngle: return spanned(make_section(">"), start);
        case Tok::kEq: return spanned(make_section("=="), start);
        case Tok::kNe: return spanned(make_section("!="), start);
        case Tok::kLe: return spanned(make_section("<="), start);
        case Tok::kGe: return spanned(make_section(">="), start);
        default: fail("bad operator section");
      }
    }
    if (at(Tok::kIntLit)) {
      const Token token = advance();
      return spanned(make_int_lit(token.int_value), token);
    }
    if (at(Tok::kFloatLit)) {
      const Token token = advance();
      return spanned(make_float_lit(token.float_value), token);
    }
    if (at(Tok::kName)) {
      const Token token = advance();
      return spanned(make_name(token.text), token);
    }
    if (accept(Tok::kLParen)) {
      ExprPtr expr = expression();
      expect(Tok::kRParen, "')'");
      return expr;
    }
    fail("expected an expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(const std::string& source) {
  return Parser(lex(source)).run();
}

}  // namespace skil::skilc
