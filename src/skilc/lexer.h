// Lexer for the Skil subset.
#pragma once

#include <string>
#include <vector>

#include "skilc/token.h"

namespace skil::skilc {

/// Tokenises a whole source text; raises support::ContractError with
/// line/column information on malformed input.  C and C++ style
/// comments are skipped.
std::vector<Token> lex(const std::string& source);

}  // namespace skil::skilc
