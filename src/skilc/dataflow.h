// A small forward/backward dataflow framework over the CFG.
//
// Facts are bit-vectors over the function's numbered locals
// (Cfg::locals); every block contributes a gen/kill transfer
// OUT = gen ∪ (IN \ kill) (or the mirrored form for backward
// problems).  The solver iterates a worklist to the fixpoint under
// the chosen meet: union for may-problems (liveness), intersection
// for must-problems (definite initialization).  Passes then re-walk
// the actions of each block from the solved boundary facts for
// per-action precision.
#pragma once

#include <cstdint>
#include <vector>

#include "skilc/cfg.h"

namespace skil::skilc {

/// A dense bit-vector of dataflow facts.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t bits, bool ones = false)
      : bits_(bits), words_((bits + 63) / 64, ones ? ~std::uint64_t{0} : 0) {
    trim();
  }

  std::size_t size() const { return bits_; }

  void set(std::size_t i) { words_[i / 64] |= std::uint64_t{1} << (i % 64); }
  void clear(std::size_t i) {
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }
  bool test(std::size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  BitVec& operator|=(const BitVec& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
    return *this;
  }
  BitVec& operator&=(const BitVec& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
    return *this;
  }
  /// this \ other.
  BitVec& subtract(const BitVec& other) {
    for (std::size_t w = 0; w < words_.size(); ++w)
      words_[w] &= ~other.words_[w];
    return *this;
  }

  bool operator==(const BitVec& other) const {
    return words_ == other.words_;
  }

 private:
  void trim() {
    if (bits_ % 64 != 0 && !words_.empty())
      words_.back() &= (std::uint64_t{1} << (bits_ % 64)) - 1;
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

enum class Direction { kForward, kBackward };
enum class Meet { kUnion, kIntersection };

/// Per-block transfer function: out = gen ∪ (in \ kill).
struct BlockTransfer {
  BitVec gen;
  BitVec kill;
};

struct DataflowResult {
  std::vector<BitVec> in;   ///< fact at block entry (program order)
  std::vector<BitVec> out;  ///< fact at block exit (program order)
};

/// Solves the dataflow problem to its fixpoint.  `boundary` is the
/// fact at the entry block (forward) or exit block (backward); all
/// other blocks start at the meet's neutral element (∅ for union,
/// the full set for intersection).
DataflowResult solve_dataflow(const Cfg& cfg,
                              const std::vector<BlockTransfer>& transfer,
                              Direction direction, Meet meet,
                              const BitVec& boundary);

}  // namespace skil::skilc
