#!/usr/bin/env python3
"""Validates the benchmark trajectory files (JSON-lines records).

Every non-empty line must parse as a standalone JSON object and carry
an integer ``schema_version`` plus the fields that version promises
(see the schema history in bench/bench_engine_wall.cpp).  The file is
append-only across PRs, so old records keep validating under their own
version's contract -- this script is what keeps a schema bump from
silently orphaning the history.

Usage: scripts/validate_bench_json.py [FILE ...]
       (default: BENCH_engine.json at the repo root)

Exits non-zero naming the file, line and violation on the first
failure.
"""

import json
import pathlib
import sys

# Fields every record must carry, by the schema version that introduced
# them.  A record of version v must carry every field introduced at or
# below v.
FIELDS_BY_VERSION = {
    1: ["benchmark", "grid", "engines", "vtimes_identical_across_engines"],
    2: ["reps", "jobs", "nproc", "charge"],
    3: [],  # v3 added per-engine rep_wall_seconds (checked below)
    4: ["carriers"],
    5: ["settle"],  # also per-engine median/settle_counters and
                    # baseline_provenance (checked below)
    6: ["fuse"],    # also per-engine fusion_counters (checked below)
    7: ["prof"],    # also per-engine scheduler iff prof != off
                    # (checked below)
    8: ["coll"],    # also per-engine coll_counters (checked below)
}
MAX_KNOWN_VERSION = max(FIELDS_BY_VERSION)

# The settlement-counter fields every v5+ engine record must account
# for (bench/bench_engine_wall.cpp schema history).
SETTLE_COUNTER_FIELDS = [
    "closed_runs", "closed_adds", "memo_hits", "memo_misses", "memo_adds",
    "probe_adds", "chain_records", "chain_adds", "gang_parks", "gang_adds",
    "inline_adds", "closed_coverage",
]

# The fusion-counter fields every v6+ engine record must account for.
# An off-mode record carries them too (all zero): their presence is
# what lets an off/on A/B pair be diffed mechanically.
FUSION_COUNTER_FIELDS = [
    "seen", "fused", "rejected_shape", "rejected_order", "rejected_path",
    "barriers_eliminated", "tapes_eliminated",
]

# The collective-counter structure every v8+ engine record must carry:
# one object per collective op, each accounting per-algorithm calls
# plus the hop-cost totals.  Like fusion_counters, a tree-mode record
# carries the block too -- its all-zero non-tree columns are what let
# a tree/auto A/B pair be diffed mechanically.
COLL_OPS = ["broadcast", "reduce", "allreduce", "allgather"]
COLL_ALGOS = ["tree", "ring", "rd", "rabenseifner"]
COLL_OP_FIELDS = ["calls", "bytes", "hops", "steps"]

# The host scheduler fields every v7+ engine record must carry when the
# run was profiled (prof != off).  Unlike fusion_counters, an off-mode
# record must NOT carry the block at all: SKIL_PROF=off promises a
# report indistinguishable from an unprofiled build's.
SCHEDULER_FIELDS = [
    "fibers_run", "fibers_resumed", "steal_attempts", "steal_successes",
    "steal_failed_rounds", "settle_enqueues", "parks", "unparks",
    "run_ns", "settle_ns", "gang_batches", "gang_lane_hist",
    "settle_queue_max", "pool_acquires", "pool_hits", "pool_misses",
    "pool_bytes",
]


def fail(path, lineno, message):
    sys.exit(f"{path}:{lineno}: {message}")


def validate_record(path, lineno, record):
    if not isinstance(record, dict):
        fail(path, lineno, f"expected a JSON object, got {type(record).__name__}")
    version = record.get("schema_version")
    if not isinstance(version, int) or version < 1:
        fail(path, lineno,
             f"missing or invalid schema_version: {version!r} "
             "(every record must carry a positive integer schema_version)")
    if version > MAX_KNOWN_VERSION:
        fail(path, lineno,
             f"schema_version {version} is newer than this validator "
             f"(max known: {MAX_KNOWN_VERSION}); update "
             "FIELDS_BY_VERSION alongside the schema bump")
    for v, fields in FIELDS_BY_VERSION.items():
        if v > version:
            continue
        for field in fields:
            if field not in record:
                fail(path, lineno,
                     f"schema_version {version} record is missing "
                     f"'{field}' (required since v{v})")
    engines = record["engines"]
    if not isinstance(engines, list) or not engines:
        fail(path, lineno, "'engines' must be a non-empty array")
    for engine in engines:
        for field in ("engine", "wall_seconds"):
            if field not in engine:
                fail(path, lineno, f"engine record is missing '{field}'")
        if version >= 3 and "rep_wall_seconds" not in engine:
            fail(path, lineno,
                 "v3+ engine record is missing 'rep_wall_seconds'")
        if version >= 5:
            if "median_wall_seconds" not in engine:
                fail(path, lineno,
                     "v5+ engine record is missing 'median_wall_seconds'")
            counters = engine.get("settle_counters")
            if not isinstance(counters, dict):
                fail(path, lineno,
                     "v5+ engine record is missing 'settle_counters'")
            for field in SETTLE_COUNTER_FIELDS:
                if field not in counters:
                    fail(path, lineno,
                         f"v5+ settle_counters is missing '{field}'")
        if version >= 6:
            fusion = engine.get("fusion_counters")
            if not isinstance(fusion, dict):
                fail(path, lineno,
                     "v6+ engine record is missing 'fusion_counters'")
            for field in FUSION_COUNTER_FIELDS:
                if field not in fusion:
                    fail(path, lineno,
                         f"v6+ fusion_counters is missing '{field}'")
            if record.get("fuse") == "off" and fusion.get("fused", 0) != 0:
                fail(path, lineno,
                     "fuse=off record reports fused compositions -- the "
                     "off path must be byte-identical to the unfused "
                     "engine")
        if version >= 8:
            coll = engine.get("coll_counters")
            if not isinstance(coll, dict):
                fail(path, lineno,
                     "v8+ engine record is missing 'coll_counters'")
            if "order_fallbacks" not in coll:
                fail(path, lineno,
                     "v8+ coll_counters is missing 'order_fallbacks'")
            for op in COLL_OPS:
                block = coll.get(op)
                if not isinstance(block, dict):
                    fail(path, lineno,
                         f"v8+ coll_counters is missing the '{op}' block")
                for field in COLL_OP_FIELDS:
                    if field not in block:
                        fail(path, lineno,
                             f"v8+ coll_counters['{op}'] is missing "
                             f"'{field}'")
                calls = block["calls"]
                if not isinstance(calls, dict):
                    fail(path, lineno,
                         f"v8+ coll_counters['{op}']['calls'] must be an "
                         "object keyed by algorithm")
                for algo in COLL_ALGOS:
                    if algo not in calls:
                        fail(path, lineno,
                             f"v8+ coll_counters['{op}']['calls'] is "
                             f"missing '{algo}'")
                if record.get("coll") == "tree":
                    # SKIL_COLL=tree pins every collective to the
                    # binomial tree; any non-tree pick means the mode
                    # override leaked.
                    for algo in COLL_ALGOS:
                        if algo != "tree" and calls.get(algo, 0) != 0:
                            fail(path, lineno,
                                 f"coll=tree record reports {op} calls "
                                 f"via '{algo}' -- the tree override "
                                 "must pin every collective")
        if version >= 7:
            sched = engine.get("scheduler")
            if record.get("prof") == "off":
                if sched is not None:
                    fail(path, lineno,
                         "prof=off record carries a 'scheduler' block -- "
                         "the off path must record nothing (it promises "
                         "zero observable profiling work)")
            else:
                if not isinstance(sched, dict):
                    fail(path, lineno,
                         "v7+ profiled engine record is missing "
                         "'scheduler'")
                for field in SCHEDULER_FIELDS:
                    if field not in sched:
                        fail(path, lineno,
                             f"v7+ scheduler is missing '{field}'")
                hist = sched["gang_lane_hist"]
                if not isinstance(hist, list) or len(hist) != 8:
                    fail(path, lineno,
                         "scheduler gang_lane_hist must be a list of 8 "
                         "lane-occupancy counts")
                # Conservation invariants: a violated one means the
                # counter plumbing dropped or double-counted events.
                if sched["steal_successes"] > sched["steal_attempts"]:
                    fail(path, lineno,
                         "scheduler reports more steal successes than "
                         "attempts")
                if sched["pool_hits"] + sched["pool_misses"] \
                        != sched["pool_acquires"]:
                    fail(path, lineno,
                         "scheduler pool hits + misses != acquires")
                if sum(hist) != sched["gang_batches"]:
                    fail(path, lineno,
                         "scheduler gang_lane_hist does not sum to "
                         "gang_batches")
    if version >= 5 and "baseline_wall_seconds" in record \
            and "baseline_provenance" not in record:
        # Satellite of ISSUE 6: a bare baseline float invites
        # misleading speedup/slowdown readings -- the record must say
        # which build/config produced it.
        fail(path, lineno,
             "v5+ record has baseline_wall_seconds without "
             "baseline_provenance")


def validate_file(path):
    text = path.read_text()
    # A raw bench_engine_wall --json report is one pretty-printed
    # object; the committed trajectory is one compact record per line
    # (bench_trajectory.sh flattens on append).  Accept both.
    try:
        validate_record(path, 1, json.loads(text))
        print(f"{path}: 1 record ok")
        return
    except json.JSONDecodeError:
        pass
    records = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            fail(path, lineno, f"line does not parse as JSON: {err}")
        validate_record(path, lineno, record)
        records += 1
    if records == 0:
        sys.exit(f"{path}: no records")
    print(f"{path}: {records} record(s) ok")


def main(argv):
    root = pathlib.Path(__file__).resolve().parent.parent
    paths = [pathlib.Path(a) for a in argv[1:]] or [root / "BENCH_engine.json"]
    for path in paths:
        if not path.exists():
            sys.exit(f"{path}: no such file")
        validate_file(path)


if __name__ == "__main__":
    main(sys.argv)
