#!/usr/bin/env sh
# Appends one record to the engine wall-clock trajectory.
#
# Builds (if needed) and runs bench_engine_wall on the Table-2 sweep
# under both execution engines, then appends the result as one compact
# JSON record per line to BENCH_engine.json at the repo root.  Records
# are schema_version 7: run config (reps, resolved jobs, carriers,
# nproc, charge path, settle mode, fuse mode, prof mode), per-cell
# wall seconds and virtual times per engine, every repetition's wall
# time ("rep_wall_seconds") plus its median, the settlement counters
# (closed-form coverage), the fusion counters (compositions seen /
# fused / rejected, barriers and tape passes eliminated), the
# scheduler totals when profiled (--prof=counters|sampled: fibers,
# steals, parks, gang batch occupancy, pool hits), and the engine
# totals; with --trace-out the record also names the exported
# trace/metrics files.  scripts/validate_bench_json.py checks the
# whole trajectory after every append.
#
# Pass --quick to restrict the grid to n in {64, 128} while iterating
# (the committed trajectory should only gain full-grid records),
# --reps=N for a min-of-N measurement, --jobs=N|auto for
# process-per-cell parallelism (auto = hardware concurrency),
# --carriers=N|auto to pin the pooled engine's carrier threads
# (>1 enables gang settlement; exported as SKIL_CARRIERS so forked
# cell workers inherit it), --charge=interp|tape to pin the
# accounting path
# (default: tape, the specialized fast path; interp is the
# interpretive oracle), --settle=gang|closed|auto to pin the ledger
# settlement strategy (default: auto; exported as SKIL_SETTLE),
# --fuse=off|on to select the skeleton fusion mode (default: off;
# exported as SKIL_FUSE -- record an off/on pair at the same config
# for the EXPERIMENTS.md W6 same-build A/B), and
# --trace-out=DIR to re-run one representative cell under
# SKIL_TRACE=full and write its Chrome trace + metrics JSON into DIR
# (created if missing; the timed sweep itself stays untraced).
#
# When recording a --baseline, also pass --baseline-note describing
# which build/config produced that number -- the provenance is stored
# as "baseline_provenance" so a record can't silently compare
# mismatched configurations (e.g. a 1-carrier run against a 4-carrier
# baseline reads as a slowdown without it).
#
# Usage: scripts/bench_trajectory.sh [--quick] [--reps=N] [--jobs=N|auto]
#                                    [--carriers=N|auto]
#                                    [--charge=interp|tape]
#                                    [--settle=gang|closed|auto]
#                                    [--fuse=off|on]
#                                    [--baseline=secs]
#                                    [--baseline-note=text]
#                                    [--trace-out=DIR]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

cmake -B build -S . >/dev/null
cmake --build build -j --target bench_engine_wall >/dev/null

record=$(mktemp)
trap 'rm -f "$record"' EXIT
./build/bench/bench_engine_wall "$@" --json="$record"

# One record per line: the first line alone is a valid JSON object,
# the file as a whole reads as JSON lines.
tr -s ' \n' ' ' < "$record" | sed 's/ $//' >> BENCH_engine.json
printf '\n' >> BENCH_engine.json
python3 scripts/validate_bench_json.py BENCH_engine.json
echo "appended to $repo_root/BENCH_engine.json"
