// Heat diffusion with overlapping partition borders -- the paper's
// section 6 future work ("it should be possible to define overlapping
// areas for the single partitions, in order to reduce communication in
// operations which require more than one element at a time.  Such
// operations are used for instance in solving partial differential
// equations ...").
//
// A 1-D rod (stored as an n x 1 distributed array, one row block per
// processor) starts hot in the middle; each time step applies the
// explicit three-point heat kernel through array_map_stencil, which
// exchanges one halo row per neighbour per step.
//
//     ./heat_stencil [--procs=8] [--cells=64] [--steps=60]
//
// The library-grade version of this workload (no terminal art, plus a
// BENCH grid and golden vtimes) lives in src/apps/stencil_jacobi.h.
#include <cstdio>
#include <string>

#include "parix/runtime.h"
#include "skil/skil.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace skil;
  const support::Cli cli(argc, argv, {"procs", "cells", "steps"});
  const int procs = cli.get_int("procs", 8);
  const int cells = cli.get_int("cells", 64);
  const int steps = cli.get_int("steps", 60);

  parix::RunConfig config{procs, parix::CostModel::t800()};
  const auto run = parix::spmd_run(config, [&](parix::Proc& proc) {
    const int rows_per_proc = (cells + procs - 1) / procs;
    const int padded = rows_per_proc * procs;
    auto temp = array_create<double>(
        proc, 2, Size{padded, 1}, Size{rows_per_proc, 1}, Index{-1, -1},
        [&](Index ix) {
          // A hot band in the middle third of the rod.
          return (ix[0] >= padded / 3 && ix[0] < 2 * padded / 3) ? 100.0
                                                                 : 0.0;
        },
        parix::Distr::kDefault);
    auto next = array_create<double>(proc, 2, Size{padded, 1},
                                     Size{rows_per_proc, 1}, Index{-1, -1},
                                     [](Index) { return 0.0; },
                                     parix::Distr::kDefault);

    auto kernel = [padded](const StencilView<double>& view, Index ix) {
      const int i = ix[0];
      const double up = view.get(i > 0 ? i - 1 : i, 0);
      const double down = view.get(i < padded - 1 ? i + 1 : i, 0);
      return 0.25 * up + 0.5 * view.get(i, 0) + 0.25 * down;
    };

    auto print_profile = [&](int step) {
      const std::vector<double> profile = array_gather_all(temp);
      if (proc.id() != 0) return;
      std::printf("t=%3d |", step);
      for (int i = 0; i < padded; i += std::max(1, padded / 64)) {
        const char* shades = " .:-=+*#%@";
        const int level =
            std::min(9, static_cast<int>(profile[i] / 100.0 * 9.99));
        std::printf("%c", shades[level]);
      }
      std::printf("|\n");
    };

    print_profile(0);
    for (int step = 1; step <= steps; ++step) {
      array_map_stencil(kernel, temp, next, /*halo=*/1);
      array_copy(next, temp);
      if (step % std::max(1, steps / 6) == 0) print_profile(step);
    }

    const double total = array_fold([](double v, Index) { return v; },
                                    fn::plus, temp);
    const double peak = array_fold([](double v, Index) { return v; },
                                   fn::max, temp);
    if (proc.id() == 0)
      std::printf("\nheat conserved: total = %.2f, peak = %.2f\n", total,
                  peak);
  });

  std::printf("modeled runtime: %.3f ms; halo messages: %llu\n",
              run.vtime_us / 1e3,
              static_cast<unsigned long long>(run.total.messages_sent));
  return 0;
}
