// skilc: the Skil compiler front end as a command-line demo.
//
// Runs the pipeline of paper sections 2.2-2.4 -- parse, polymorphic
// type check, translation by instantiation, C emission -- either on a
// file given as argument or on the paper's built-in section 2.4
// example, and prints the resulting first-order monomorphic C.
//
//     ./skilc_demo [--skeletonize] [file.skil]
//
// With --skeletonize the auto-skeletonization pass (DESIGN.md section
// 16) rewrites recognized sequential loops into skeleton calls before
// translation, and a summary of its decisions is printed.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "skilc/compiler.h"
#include "support/error.h"

namespace {

const char* kPaperExample = R"(// The paper's section 2.4 example.
pardata array <$t> implementation_hidden;

Index mk_index(int i);
int part_lower(array <$t> a);
int part_upper(array <$t> a);

// The map skeleton: a polymorphic higher-order function.
void array_map ($t2 map_f ($t1, Index), array <$t1> a, array <$t2> b) {
  int i;
  for (i = part_lower(a); i < part_upper(a); i = i + 1)
    b[i] = map_f(a[i], mk_index(i));
}

// The customizing function; its first argument is supplied by
// partial application at the call site.
int above_thresh (float thresh, float elem, Index ix) {
  return elem >= thresh;
}

void threshold_all (float t, array <float> A, array <int> B) {
  array_map(above_thresh(t), A, B);
}
)";

}  // namespace

int main(int argc, char** argv) {
  skil::skilc::CompileOptions options;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--skeletonize") {
      options.skeletonize = true;
    } else {
      path = argv[i];
    }
  }

  std::string source;
  if (path != nullptr) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
    std::printf("// input: %s\n\n", path);
  } else {
    source = kPaperExample;
    std::printf("// no input file given -- compiling the paper's "
                "section 2.4 example\n\n");
  }

  std::printf("---- Skil source "
              "------------------------------------------------\n%s\n",
              source.c_str());
  try {
    const skil::skilc::CompileResult result =
        skil::skilc::compile(source, options);
    if (options.skeletonize) {
      std::printf("---- skeletonization "
                  "--------------------------------------------\n");
      const skil::skilc::SkeletonizeCounters& sk = result.skeletonize;
      std::printf("// %d loop(s) seen, %d recognized (%d map, %d fold, "
                  "%d gen_mult), %d rejected\n",
                  sk.loops_seen, sk.recognized(), sk.recognized_map,
                  sk.recognized_fold, sk.recognized_gen_mult, sk.rejected());
      for (const skil::skilc::Diagnostic& diag : result.diagnostics) {
        if (diag.pass != "skeletonize") continue;
        std::printf("// line %d: %s\n", diag.span.line, diag.message.c_str());
      }
      std::printf("\n");
    }
    std::printf("---- after type checking and translation by instantiation "
                "------\n%s",
                result.c_code.c_str());
    std::printf("// %zu function(s) in the first-order monomorphic "
                "output\n",
                result.instantiated.functions.size());
  } catch (const skil::support::Error& e) {
    std::fprintf(stderr, "skilc: %s\n", e.what());
    return 1;
  }
  return 0;
}
