// The paper's introductory example: the divide&conquer skeleton and
// quicksort as its instance, using Skil's functional features --
// higher-order functions, currying, partial application and operator
// sections (sections 1 and 2.1).
//
//   d&c is_trivial solve split join problem =
//     if (is_trivial problem) then (solve problem)
//     else (join (map (d&c is_trivial solve split join)
//                     (split problem)))
//
//   quicksort lst = d&c is_simple ident divide concat lst
//
// The skeleton here is the *functional specification* from the paper's
// introduction (the data-parallel array skeletons are the library's
// parallel core); this example shows that the host-language features
// carry over: the same d&c, reused for quicksort and for a maximum
// computation, via curry and partial application.
//
//     ./quicksort_dc [--elems=24] [--seed=5]
#include <cstdio>
#include <functional>
#include <vector>

#include "skil/functional.h"
#include "support/cli.h"
#include "support/rng.h"

namespace {

using List = std::vector<int>;

/// The d&c skeleton: a higher-order function with four functional
/// arguments, exactly as typed in the paper:
///   (a->Bool) -> (a->b) -> (a->[a]) -> ([b]->b) -> a -> b
template <class IsTrivial, class Solve, class Split, class Join>
auto d_and_c(IsTrivial is_trivial, Solve solve, Split split, Join join,
             const List& problem) -> decltype(solve(problem)) {
  if (is_trivial(problem)) return solve(problem);
  std::vector<decltype(solve(problem))> solutions;
  for (const List& sub : split(problem))
    // The recursive call is the paper's partial application of d&c to
    // its four customizing functions.
    solutions.push_back(d_and_c(is_trivial, solve, split, join, sub));
  return join(solutions);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skil;
  const support::Cli cli(argc, argv, {"elems", "seed"});
  const int elems = cli.get_int("elems", 24);
  support::Rng rng(cli.get_int("seed", 5));

  List input;
  for (int i = 0; i < elems; ++i) input.push_back(rng.next_int(0, 99));

  // quicksort = d&c is_simple ident divide concat
  auto is_simple = [](const List& l) { return l.size() <= 1; };
  auto ident = [](const List& l) { return l; };
  auto divide = [](const List& l) {
    // The paper's divide: "the elements that are smaller than a given
    // pivot element, the pivot element itself, and the elements
    // greater or equal" -- only one pivot occurrence goes into the
    // middle list, so every sublist is strictly smaller than l.
    const int pivot = l.front();
    List below, mid{pivot}, above;
    for (std::size_t i = 1; i < l.size(); ++i)
      (l[i] < pivot ? below : above).push_back(l[i]);
    return std::vector<List>{below, mid, above};
  };
  auto concat = [](const std::vector<List>& parts) {
    List all;
    for (const List& part : parts) all.insert(all.end(), part.begin(),
                                              part.end());
    return all;
  };

  // Partial application: bind the four customizing functions now, the
  // problem later -- `quicksort` is a first-class value.
  auto quicksort = [&](const List& l) {
    return d_and_c(is_simple, ident, divide, concat, l);
  };

  std::printf("input : ");
  for (int v : input) std::printf("%d ", v);
  const List sorted = quicksort(input);
  std::printf("\nsorted: ");
  for (int v : sorted) std::printf("%d ", v);
  std::printf("\n\n");

  // Operator sections and currying, as in section 2.1:
  // fold((+), lst) and map((*)(2), lst).
  auto fold = [](auto op, const List& l) {
    int acc = l.front();
    for (std::size_t i = 1; i < l.size(); ++i) acc = op(acc, l[i]);
    return acc;
  };
  auto map = [](auto f, List l) {
    for (int& v : l) v = f(v);
    return l;
  };
  const int sum = fold(fn::plus, sorted);              // fold((+), lst1)
  const List doubled = map(fn::section(fn::times, 2),  // map((*)(2), lst2)
                           sorted);
  std::printf("fold((+), sorted) = %d\n", sum);
  std::printf("map((*)(2), sorted) front/back = %d / %d\n", doubled.front(),
              doubled.back());

  // Currying: a curried ternary clamp applied one argument at a time.
  auto clamp = curry([](int lo, int hi, int v) {
    return fn::max(lo, fn::min(hi, v));
  });
  auto clamp_0_50 = clamp(0)(50);
  std::printf("curried clamp(0)(50) over the maximum %d -> %d\n",
              sorted.back(), clamp_0_50(sorted.back()));
  return 0;
}
