// Shortest paths in graphs (paper section 4.1) on a small random
// graph, printing the distance matrix and the three implementations'
// modeled runtimes.
//
//     ./shortest_paths [--procs=4] [--nodes=12] [--seed=7]
#include <cstdio>

#include "apps/shortest_paths.h"
#include "support/cli.h"
#include "support/matrix.h"

int main(int argc, char** argv) {
  using namespace skil;
  const support::Cli cli(argc, argv, {"procs", "nodes", "seed"});
  const int procs = cli.get_int("procs", 4);
  const int nodes = cli.get_int("nodes", 12);
  const std::uint64_t seed = cli.get_int("seed", 7);

  const auto skil_run = apps::shpaths_skil(procs, nodes, seed);
  const auto dpfl_run = apps::shpaths_dpfl(procs, nodes, seed);
  const auto old_c = apps::shpaths_c(procs, nodes, seed, false);
  const auto opt_c = apps::shpaths_c(procs, nodes, seed, true);

  const auto& d = skil_run.distances;
  std::printf("all-pairs shortest paths, %d nodes (padded to %d), "
              "%d processors\n\n    ",
              nodes, d.rows(), procs);
  for (int j = 0; j < nodes; ++j) std::printf("%5d", j);
  std::printf("\n");
  for (int i = 0; i < nodes; ++i) {
    std::printf("%3d ", i);
    for (int j = 0; j < nodes; ++j) {
      if (d(i, j) == support::kDistInf)
        std::printf("    -");
      else
        std::printf("%5u", d(i, j));
    }
    std::printf("\n");
  }

  std::printf("\nmodeled runtimes (T800 machine):\n");
  std::printf("  Skil skeletons : %10.3f ms\n",
              skil_run.run.vtime_us / 1e3);
  std::printf("  DPFL baseline  : %10.3f ms  (%.2fx Skil)\n",
              dpfl_run.run.vtime_us / 1e3,
              dpfl_run.run.vtime_us / skil_run.run.vtime_us);
  std::printf("  old Parix-C    : %10.3f ms  (%.2fx Skil)\n",
              old_c.run.vtime_us / 1e3,
              old_c.run.vtime_us / skil_run.run.vtime_us);
  std::printf("  optimized C    : %10.3f ms  (%.2fx Skil)\n",
              opt_c.run.vtime_us / 1e3,
              opt_c.run.vtime_us / skil_run.run.vtime_us);
  return 0;
}
