// Quickstart: the paper's section 2.4 example, end to end.
//
// "Assume we want to compare all elements of an array of floats A with
// some threshold value t and put the boolean (in C and Skil integer)
// results into another array B.  This can be done by the following
// call of the map skeleton:
//
//     array_map (above_thresh (t), A, B);"
//
// This program creates a distributed float array, maps the partially
// applied above_thresh over it, folds the hit count, and prints the
// run's virtual-time accounting.  Run it as:
//
//     ./quickstart [--procs=8] [--elems=32]
#include <cstdio>

#include "parix/runtime.h"
#include "skil/skil.h"
#include "support/cli.h"

namespace {

using namespace skil;

// The paper's customizing function: the threshold arrives by partial
// application, the element and its index come from the skeleton.
int above_thresh(float thresh, float elem, Index /*ix*/) {
  return elem >= thresh ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv, {"procs", "elems"});
  const int procs = cli.get_int("procs", 8);
  const int elems = cli.get_int("elems", 32);

  parix::RunConfig config{procs, parix::CostModel::t800()};
  const parix::RunResult run = parix::spmd_run(config, [&](parix::Proc& proc) {
    // A = array_create(1, {elems}, ..., init, DISTR_DEFAULT);
    DistArray<float> a = array_create<float>(
        proc, 1, Size{elems},
        [](Index ix) { return static_cast<float>(ix[0]) * 0.5f; });
    DistArray<int> b = array_create<int>(proc, 1, Size{elems},
                                         [](Index) { return 0; });

    // array_map(above_thresh(t), A, B): `partial` is Skil's partial
    // application -- the compiler instantiates the skeleton with
    // above_thresh inlined and the threshold lifted to a parameter.
    const float t = 7.0f;
    array_map(partial(above_thresh, t), a, b);

    // array_fold((+), ...): count the hits; every processor receives
    // the folded result.
    const int hits = array_fold([](int v, Index) { return v; }, fn::plus, b);

    if (proc.id() == 0) {
      std::printf("elements >= %.1f: %d of %d\n", t, hits, elems);
      const Bounds mine = b.part_bounds();
      std::printf("processor 0 owns rows %d..%d\n", mine.lower[0],
                  mine.upper[0] - 1);
    }

    array_destroy(a);
    array_destroy(b);
  });

  std::printf("modeled runtime on the 20 MHz transputer machine: %.3f ms\n",
              run.vtime_us / 1000.0);
  std::printf("messages sent: %llu (%llu bytes)\n",
              static_cast<unsigned long long>(run.total.messages_sent),
              static_cast<unsigned long long>(run.total.bytes_sent));
  return 0;
}
