// Gaussian elimination (paper section 4.2) as a linear-system solver:
// builds a random system that *requires* partial pivoting, solves it
// with the complete skeleton program (fold for the pivot search,
// permute_rows for the exchange, map + broadcast_part for the
// elimination), and verifies the residual.
//
//     ./gauss_solver [--procs=4] [--n=24] [--seed=3]
#include <cmath>
#include <cstdio>

#include "apps/gauss.h"
#include "support/cli.h"
#include "support/matrix.h"

int main(int argc, char** argv) {
  using namespace skil;
  const support::Cli cli(argc, argv, {"procs", "n", "seed"});
  const int procs = cli.get_int("procs", 4);
  const int n = cli.get_int("n", 24);
  const std::uint64_t seed = cli.get_int("seed", 3);

  std::printf("solving a %dx%d system (rows scrambled to force "
              "pivoting) on %d processors\n\n",
              n, n, procs);

  const auto with_pivot = apps::gauss_skil(procs, n, seed, /*pivoting=*/true);
  const auto ab = support::random_pivoting_system(n, seed);
  const std::vector<double> x(with_pivot.x.begin(), with_pivot.x.begin() + n);

  std::printf("solution x (first %d components):\n  ", std::min(n, 8));
  for (int i = 0; i < std::min(n, 8); ++i) std::printf("% .5f ", x[i]);
  std::printf("%s\n", n > 8 ? "..." : "");
  std::printf("residual ||Ax - b||_inf = %.3e\n\n", residual_inf(ab, x));

  // The paper's singular-matrix diagnostic.
  std::printf("and the error path: a singular matrix raises the paper's "
              "run-time error --\n");
  try {
    // The no-pivot variant on a matrix with a zero pivot: build it by
    // solving the scrambled system *without* pivoting, which hits a
    // ~zero pivot quickly for this workload only if truly singular;
    // instead demonstrate with pivoting on an actually singular
    // system via the sequential oracle.
    support::Matrix<double> singular(3, 4, 0.0);
    singular(0, 0) = 1.0;
    singular(1, 1) = 1.0;  // row 2 is all zeros -> singular
    support::seq_gauss_pivot(singular);
  } catch (const support::AppError& e) {
    std::printf("  caught AppError: \"%s\"\n\n", e.what());
  }

  std::printf("modeled runtimes (T800 machine):\n");
  const auto no_pivot = apps::gauss_skil(procs, n, seed, false);
  std::printf("  with pivot search : %9.3f ms\n",
              with_pivot.run.vtime_us / 1e3);
  std::printf("  without (paper's Table 2 variant): %9.3f ms  "
              "(pivoting costs %.2fx)\n",
              no_pivot.run.vtime_us / 1e3,
              with_pivot.run.vtime_us / no_pivot.run.vtime_us);
  return 0;
}
